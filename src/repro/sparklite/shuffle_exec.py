"""Simulated SparkSQL execution: shuffle hash joins for every join.

SparkSQL (without our framework) computes each star join by shuffling
*both* sides on the join key: every stage re-partitions the surviving
fact stream across the cluster, paying serialization CPU, shuffle-file
disk writes/reads and all-to-all network transfer — then builds and
probes hash tables.  The fact stream therefore crosses the wire once
per join, which is the cost the paper's framework avoids.

Stage boundaries are barriers (Spark's shuffle semantics).  True
per-stage cardinalities come from the real operator pipeline, so the
timing model never diverges from actual query semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.tracer import NO_TRACER, Span, Tracer
from repro.runtime.transport import ShuffleChannel
from repro.sim.cluster import Cluster
from repro.sparklite.operators import hash_join, select
from repro.sparklite.planner import order_joins
from repro.sparklite.query import StarQuery
from repro.sparklite.relation import Relation


@dataclass(frozen=True)
class SparkCosts:
    """Per-row CPU and width constants of the shuffle executor."""

    fact_row_bytes: float = 64.0
    dim_row_bytes: float = 48.0
    serialize_cpu: float = 1.5e-6
    deserialize_cpu: float = 1.5e-6
    build_cpu: float = 1.0e-6
    probe_cpu: float = 1.0e-6
    scan_cpu: float = 0.5e-6
    agg_cpu: float = 1.0e-6
    #: Fixed per-stage cost: task scheduling, shuffle-service setup.
    stage_overhead: float = 0.05


@dataclass(frozen=True)
class ShuffleQueryResult:
    """Timing and provenance of one simulated SparkSQL query."""

    query: str
    makespan: float
    stage_times: list[float]
    stage_cardinalities: list[int]
    bytes_shuffled: float
    result: Relation
    shuffle_retransmits: int = 0
    shuffle_duplicates: int = 0


class ShuffleExecutor:
    """SparkSQL-style executor over the simulated cluster."""

    def __init__(
        self,
        cluster: Cluster,
        costs: SparkCosts | None = None,
        shuffle: ShuffleChannel | None = None,
        tracer: Tracer = NO_TRACER,
    ) -> None:
        self.cluster = cluster
        self.costs = costs if costs is not None else SparkCosts()
        self.tracer = tracer
        # All-to-all traffic goes through the runtime kernel's
        # at-least-once channel: installed fault schedules
        # (`Network.delivery_plan`) now perturb Spark-style stages too.
        self.shuffle = shuffle if shuffle is not None else ShuffleChannel(cluster)

    def run(
        self,
        query: StarQuery,
        join_order: list[int] | None = None,
        span_parent: Span | None = None,
    ) -> ShuffleQueryResult:
        """Execute ``query``; returns timing plus the real result.

        ``span_parent`` nests the per-stage spans under the caller's
        job span.
        """
        cluster = self.cluster
        n = len(cluster)
        costs = self.costs
        order = join_order if join_order is not None else order_joins(query)

        stage_times: list[float] = []
        stage_cards: list[int] = []
        bytes_shuffled = 0.0

        # ------------------------------------------------------------
        # Stage 0: scan + filter the fact table from HDFS.
        # ------------------------------------------------------------
        current = (
            select(query.fact, query.fact_predicate)
            if query.fact_predicate
            else query.fact
        )
        scan_rows_per_node = len(query.fact) / n
        scan_bytes_per_node = scan_rows_per_node * costs.fact_row_bytes
        clock = costs.stage_overhead
        finish = clock
        for node in cluster.nodes:
            _ds, disk_done = node.disk.acquire(
                clock, scan_bytes_per_node / node.spec.disk_bandwidth
            )
            _cs, cpu_done = node.cpu.acquire(
                clock, scan_rows_per_node * costs.scan_cpu
            )
            finish = max(finish, disk_done, cpu_done)
        if self.tracer.enabled:
            span = self.tracer.start(
                "stage", parent=span_parent, at=clock,
                kind="scan", rows=len(current),
            )
            self.tracer.end(span, at=finish)
        stage_times.append(finish - clock)
        stage_cards.append(len(current))
        clock = finish

        # ------------------------------------------------------------
        # One shuffle-join stage per dimension, in planner order.
        # ------------------------------------------------------------
        for index in order:
            join = query.joins[index]
            dim = join.filtered_dimension()
            rows_in = len(current)
            stage_start = clock + costs.stage_overhead
            finish = stage_start
            stage_span: Span | None = None
            if self.tracer.enabled:
                stage_span = self.tracer.start(
                    "stage", parent=span_parent, at=stage_start,
                    kind="shuffle-join", join=index, rows_in=rows_in,
                )
            fact_bytes_per_node = rows_in / n * costs.fact_row_bytes
            dim_bytes_per_node = len(dim) / n * costs.dim_row_bytes
            out_fraction = (n - 1) / n  # data leaving each node
            for node in cluster.nodes:
                # Shuffle write (map side): serialize + spill to disk.
                ser_cpu = (rows_in / n) * costs.serialize_cpu
                _c1, ser_done = node.cpu.acquire(stage_start, ser_cpu)
                _d1, spill_done = node.disk.acquire(
                    stage_start, fact_bytes_per_node / node.spec.disk_bandwidth
                )
                ready = max(ser_done, spill_done)
                # All-to-all transfer of this node's outbound share.
                out_bytes = (fact_bytes_per_node + dim_bytes_per_node) * out_fraction
                outcome = self.shuffle.transfer(
                    ready, node.node_id, (node.node_id + 1) % n, out_bytes,
                    span_parent=stage_span,
                )
                bytes_shuffled += out_bytes
                # Shuffle read (reduce side): deserialize, build, probe.
                de_cpu = (rows_in / n) * costs.deserialize_cpu
                build_cpu = (len(dim) / n) * costs.build_cpu
                probe_cpu = (rows_in / n) * costs.probe_cpu
                _c2, cpu_done = node.cpu.acquire(
                    outcome.arrive, de_cpu + build_cpu + probe_cpu
                )
                finish = max(finish, cpu_done)
            current = hash_join(current, dim, join.fact_key, join.dim_key)
            if stage_span is not None:
                self.tracer.end(stage_span, at=finish, rows_out=len(current))
            stage_times.append(finish - stage_start)
            stage_cards.append(len(current))
            clock = finish

        # ------------------------------------------------------------
        # Final aggregation (one more small shuffle).
        # ------------------------------------------------------------
        from repro.sparklite.operators import group_aggregate

        result = group_aggregate(current, list(query.group_by), list(query.aggregates))
        agg_start = clock + costs.stage_overhead
        finish = agg_start
        agg_span: Span | None = None
        if self.tracer.enabled:
            agg_span = self.tracer.start(
                "stage", parent=span_parent, at=agg_start,
                kind="aggregate", rows_in=len(current),
            )
        for node in cluster.nodes:
            agg_cpu = (len(current) / n) * costs.agg_cpu
            _c, cpu_done = node.cpu.acquire(agg_start, agg_cpu)
            out_bytes = (len(result) / n) * costs.fact_row_bytes
            outcome = self.shuffle.transfer(
                cpu_done, node.node_id, (node.node_id + 1) % n, out_bytes,
                span_parent=agg_span,
            )
            bytes_shuffled += out_bytes
            finish = max(finish, outcome.arrive)
        if agg_span is not None:
            self.tracer.end(agg_span, at=finish, rows_out=len(result))
        stage_times.append(finish - agg_start)
        stage_cards.append(len(result))

        return ShuffleQueryResult(
            query=query.name,
            makespan=finish,
            stage_times=stage_times,
            stage_cardinalities=stage_cards,
            bytes_shuffled=bytes_shuffled,
            result=result,
            shuffle_retransmits=self.shuffle.retransmits,
            shuffle_duplicates=self.shuffle.duplicates,
        )
