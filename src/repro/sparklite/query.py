"""Star-query description and reference (real) execution.

The four Figure 7 queries are star joins: the ``store_sales`` fact
table joined with 2-4 filtered dimensions, then grouped and
aggregated.  :class:`StarQuery` captures that shape; :meth:`execute`
runs it for real via the operators module (the reference answer both
timing executors must agree with on cardinalities).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sparklite.expressions import And
from repro.sparklite.operators import group_aggregate, hash_join, select
from repro.sparklite.relation import Relation


@dataclass(frozen=True)
class DimensionJoin:
    """One dimension edge of a star query."""

    dimension: Relation
    fact_key: str  # join column on the fact side (e.g. ss_item_sk)
    dim_key: str  # join column on the dimension side (e.g. i_item_sk)
    predicate: And = field(default_factory=And)

    def filtered_dimension(self) -> Relation:
        """Dimension rows surviving the predicate."""
        if not self.predicate:
            return self.dimension
        return select(self.dimension, self.predicate)

    def selectivity(self) -> float:
        """Fraction of dimension rows surviving the predicate."""
        return self.predicate.selectivity(self.dimension) if self.predicate else 1.0


@dataclass(frozen=True)
class StarQuery:
    """A fact-table star join with grouping and aggregation."""

    name: str
    fact: Relation
    joins: tuple[DimensionJoin, ...]
    group_by: tuple[str, ...]
    aggregates: tuple[tuple[str, str, str], ...]
    fact_predicate: And = field(default_factory=And)

    def execute(self, join_order: list[int] | None = None) -> Relation:
        """Run the query for real; returns the aggregated relation.

        ``join_order`` indexes into ``self.joins`` (defaults to the
        declared order); the answer is order-independent but the tests
        use this to confirm that.
        """
        current = (
            select(self.fact, self.fact_predicate)
            if self.fact_predicate
            else self.fact
        )
        order = join_order if join_order is not None else list(range(len(self.joins)))
        for index in order:
            join = self.joins[index]
            current = hash_join(
                current, join.filtered_dimension(), join.fact_key, join.dim_key
            )
        return group_aggregate(
            current, list(self.group_by), list(self.aggregates)
        )
