"""Predicates for the mini relational engine.

A deliberately small expression language: column-vs-literal comparisons
plus conjunction — enough for the simplified TPC-DS queries (equality
and membership filters on dimension attributes).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any

from repro.sparklite.relation import Relation

_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class Predicate:
    """``column <op> value`` or ``column in values``.

    Examples
    --------
    >>> from repro.sparklite.relation import Relation, Schema
    >>> r = Relation("t", Schema(("x",)), [(1,), (5,)])
    >>> p = Predicate("x", ">", 2)
    >>> [p.evaluate(r, row) for row in r]
    [False, True]
    """

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS and self.op != "in":
            raise ValueError(f"unsupported operator {self.op!r}")

    def evaluate(self, relation: Relation, row: tuple) -> bool:
        """Whether ``row`` of ``relation`` satisfies the predicate."""
        cell = relation.row_value(row, self.column)
        if self.op == "in":
            return cell in self.value
        return _OPS[self.op](cell, self.value)

    def selectivity(self, relation: Relation) -> float:
        """Exact fraction of rows passing (the planner's statistic).

        TPC-DS dimensions are small, so exact selectivities are cheap;
        they stand in for Catalyst's column statistics.
        """
        if not relation.rows:
            return 1.0
        passing = sum(1 for row in relation if self.evaluate(relation, row))
        return passing / len(relation)


@dataclass(frozen=True)
class And:
    """Conjunction of predicates (empty = always true)."""

    predicates: tuple[Predicate, ...] = ()

    def evaluate(self, relation: Relation, row: tuple) -> bool:
        """Whether ``row`` satisfies every conjunct."""
        return all(p.evaluate(relation, row) for p in self.predicates)

    def selectivity(self, relation: Relation) -> float:
        """Exact conjunction selectivity (measured, not independence)."""
        if not relation.rows:
            return 1.0
        passing = sum(1 for row in relation if self.evaluate(relation, row))
        return passing / len(relation)

    def __bool__(self) -> bool:
        return bool(self.predicates)
