"""Real relational operators: select, project, hash join, aggregate.

These execute actual data and return actual results.  The timing
executors (:mod:`shuffle_exec`, :mod:`indexed_exec`) reuse them to
obtain the true cardinalities their cost models consume, and the tests
use them to check both execution paths produce identical answers.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable

from repro.sparklite.expressions import And, Predicate
from repro.sparklite.relation import Relation, Schema


def select(relation: Relation, predicate: Predicate | And) -> Relation:
    """Rows of ``relation`` satisfying ``predicate``."""
    rows = [row for row in relation if predicate.evaluate(relation, row)]
    return Relation(f"select({relation.name})", relation.schema, rows)


def project(relation: Relation, columns: list[str]) -> Relation:
    """Keep only ``columns`` (in the given order)."""
    indices = [relation.schema.index(c) for c in columns]
    rows = [tuple(row[i] for i in indices) for row in relation]
    return Relation(f"project({relation.name})", Schema(tuple(columns)), rows)


def hash_join(
    left: Relation, right: Relation, left_key: str, right_key: str
) -> Relation:
    """Equi-join; output schema = left columns + right's non-key columns.

    The right key column is dropped from the output (it equals the
    left key), matching what a projection-pruning optimizer would do.
    """
    right_key_idx = right.schema.index(right_key)
    build: dict[Any, list[tuple]] = defaultdict(list)
    for row in right:
        build[row[right_key_idx]].append(row)
    kept_right = [
        (i, c)
        for i, c in enumerate(right.schema.columns)
        if c != right_key and c not in left.schema
    ]
    out_schema = Schema(
        tuple(left.schema.columns) + tuple(c for _i, c in kept_right)
    )
    left_key_idx = left.schema.index(left_key)
    rows = []
    for lrow in left:
        for rrow in build.get(lrow[left_key_idx], ()):
            rows.append(lrow + tuple(rrow[i] for i, _c in kept_right))
    return Relation(f"join({left.name},{right.name})", out_schema, rows)


#: Aggregate functions by name; each maps a list of values to a scalar.
AGGREGATES: dict[str, Callable[[list], Any]] = {
    "sum": sum,
    "count": len,
    "min": min,
    "max": max,
    "avg": lambda values: sum(values) / len(values) if values else None,
}


def group_aggregate(
    relation: Relation,
    group_by: list[str],
    aggregates: list[tuple[str, str, str]],
) -> Relation:
    """GROUP BY with named aggregates.

    ``aggregates`` entries are ``(function, column, output_name)``,
    e.g. ``("sum", "ss_ext_sales_price", "total")``.
    """
    group_idx = [relation.schema.index(c) for c in group_by]
    agg_specs = [
        (AGGREGATES[fn], relation.schema.index(col), out)
        for fn, col, out in aggregates
    ]
    groups: dict[tuple, list[tuple]] = defaultdict(list)
    for row in relation:
        groups[tuple(row[i] for i in group_idx)].append(row)
    out_columns = tuple(group_by) + tuple(out for _f, _i, out in agg_specs)
    rows = []
    for group_key in sorted(groups, key=repr):
        members = groups[group_key]
        aggs = tuple(fn([m[i] for m in members]) for fn, i, _out in agg_specs)
        rows.append(group_key + aggs)
    return Relation(f"agg({relation.name})", Schema(out_columns), rows)
