"""Relations: schemas plus row storage for the mini relational engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator


@dataclass(frozen=True)
class Schema:
    """Ordered column names.

    Examples
    --------
    >>> s = Schema(("a", "b"))
    >>> s.index("b")
    1
    >>> s.merge(Schema(("b", "c"))).columns
    ('a', 'b', 'c')
    """

    columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate column names in {self.columns}")

    def index(self, column: str) -> int:
        """Position of ``column``; raises KeyError if absent."""
        try:
            return self.columns.index(column)
        except ValueError:
            raise KeyError(f"no column {column!r} in {self.columns}") from None

    def __contains__(self, column: str) -> bool:
        return column in self.columns

    def merge(self, other: "Schema") -> "Schema":
        """Union schema for a join output (shared names collapse)."""
        merged = list(self.columns)
        for column in other.columns:
            if column not in merged:
                merged.append(column)
        return Schema(tuple(merged))


class Relation:
    """A named, schema-carrying bag of tuples.

    Rows are plain tuples aligned with the schema; dict access goes
    through :meth:`row_value`.
    """

    def __init__(
        self, name: str, schema: Schema, rows: Iterable[tuple] | None = None
    ) -> None:
        self.name = name
        self.schema = schema
        self.rows: list[tuple] = [tuple(r) for r in (rows or [])]
        for row in self.rows:
            if len(row) != len(schema.columns):
                raise ValueError(
                    f"row arity {len(row)} != schema arity {len(schema.columns)}"
                )

    @classmethod
    def from_dicts(cls, name: str, records: list[dict[str, Any]]) -> "Relation":
        """Build a relation from dict records (column order = first record)."""
        if not records:
            raise ValueError("from_dicts needs at least one record")
        schema = Schema(tuple(records[0].keys()))
        rows = [tuple(rec[c] for c in schema.columns) for rec in records]
        return cls(name, schema, rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def row_value(self, row: tuple, column: str) -> Any:
        """Value of ``column`` in ``row``."""
        return row[self.schema.index(column)]

    def column(self, column: str) -> list[Any]:
        """All values of one column."""
        idx = self.schema.index(column)
        return [row[idx] for row in self.rows]

    def row_bytes(self, per_value: float = 8.0) -> float:
        """Approximate serialized row width (for the timing model)."""
        return per_value * len(self.schema.columns)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Relation({self.name!r}, {len(self.rows)} rows)"
