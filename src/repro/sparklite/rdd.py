"""A mini RDD with the paper's ``preMap`` extensions (Appendix D.2).

Spark programs transform resilient distributed datasets with ``map`` /
``flatMap`` / ``filter``.  The paper extends the RDD API with
``mapWithPremap`` and ``flatMapWithPremap``: the user supplies a
``pre_map`` that issues prefetch requests for each element and a
``map``/``flatMap`` body that consumes the fetched values — mirroring
the Java API's ``call(t, async)`` pair.

This is the *real-execution* API layer: transformations are lazy,
``collect`` materializes, and the premap variants batch their lookups
through a user-supplied fetcher via the shared prefetch machinery.
(The distributed timing of such pipelines is modelled separately by
:mod:`repro.sparklite.indexed_exec`.)
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, Iterator

from repro.engine.prefetch import PreMapRunner


class RDD:
    """A lazily transformed dataset.

    Examples
    --------
    >>> RDD.parallelize([1, 2, 3]).map(lambda x: x * 2).collect()
    [2, 4, 6]
    >>> RDD.parallelize(["a b", "c"]).flat_map(str.split).collect()
    ['a', 'b', 'c']
    """

    def __init__(self, source: Callable[[], Iterator[Any]]) -> None:
        self._source = source

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def parallelize(cls, data: Iterable[Any]) -> "RDD":
        """Wrap an in-memory collection."""
        materialized = list(data)
        return cls(lambda: iter(materialized))

    # ------------------------------------------------------------------
    # Classic transformations (lazy)
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any]) -> "RDD":
        """Element-wise transformation."""
        parent = self._source
        return RDD(lambda: (fn(x) for x in parent()))

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "RDD":
        """Element-to-many transformation."""
        parent = self._source
        return RDD(lambda: (y for x in parent() for y in fn(x)))

    def filter(self, predicate: Callable[[Any], bool]) -> "RDD":
        """Keep elements satisfying the predicate."""
        parent = self._source
        return RDD(lambda: (x for x in parent() if predicate(x)))

    # ------------------------------------------------------------------
    # The paper's extensions
    # ------------------------------------------------------------------
    def map_with_premap(
        self,
        pre_map: Callable[[Any], Iterable[Hashable]],
        map_fn: Callable[[Any, dict[Hashable, Any]], Any],
        bulk_fetch: Callable[[list[Hashable]], dict[Hashable, Any]],
        window: int = 64,
    ) -> "RDD":
        """``mapWithPremap``: prefetch-ahead element transformation.

        ``pre_map`` names the keys element ``t`` will need;
        ``bulk_fetch`` resolves a window's worth in one batched call;
        ``map_fn(t, values)`` is the map body (the Java API's
        ``call(t, async)`` retrieval side).
        """
        parent = self._source

        def source() -> Iterator[Any]:
            runner = PreMapRunner(
                pre_map=pre_map, bulk_fetch=bulk_fetch, map_fn=map_fn,
                window=window,
            )
            return runner.run(parent())

        return RDD(source)

    def flat_map_with_premap(
        self,
        pre_map: Callable[[Any], Iterable[Hashable]],
        flat_map_fn: Callable[[Any, dict[Hashable, Any]], Iterable[Any]],
        bulk_fetch: Callable[[list[Hashable]], dict[Hashable, Any]],
        window: int = 64,
    ) -> "RDD":
        """``flatMapWithPremap``: prefetch-ahead one-to-many transform."""
        parent = self._source

        def source() -> Iterator[Any]:
            runner = PreMapRunner(
                pre_map=pre_map, bulk_fetch=bulk_fetch,
                map_fn=lambda item, values: list(flat_map_fn(item, values)),
                window=window,
            )
            for produced in runner.run(parent()):
                yield from produced

        return RDD(source)

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def collect(self) -> list[Any]:
        """Materialize the dataset."""
        return list(self._source())

    def count(self) -> int:
        """Number of elements."""
        return sum(1 for _ in self._source())

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        """Fold the dataset with a binary function."""
        iterator = self._source()
        try:
            accumulator = next(iterator)
        except StopIteration:
            raise ValueError("reduce of an empty RDD") from None
        for element in iterator:
            accumulator = fn(accumulator, element)
        return accumulator

    def take(self, n: int) -> list[Any]:
        """The first ``n`` elements."""
        if n < 0:
            raise ValueError("n must be non-negative")
        out = []
        for element in self._source():
            if len(out) >= n:
                break
            out.append(element)
        return out
