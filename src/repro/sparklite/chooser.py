"""Cost-based executor choice (the paper's Catalyst future work).

"Another area of future work is to extend the Catalyst optimizer of
SparkSQL to use our join technique when appropriate."  This module is
that extension for the mini engine: closed-form cost estimates for the
shuffle plan and for the indexed (framework) plan, and a chooser that
picks per query.

The estimates deliberately mirror what each executor charges:

* **shuffle** — per join stage, the surviving fact stream pays
  serialize + spill + transfer + deserialize + probe, plus a fixed
  stage overhead;
* **indexed** — the fact scan, one lookup per fact row per stage
  (mostly cache-probe CPU after warm-up), plus a warm-up term of one
  fetch per *distinct referenced dimension key* — the term that makes
  indexed execution lose when dimension keys are barely reused.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sparklite.indexed_exec import IndexedCosts
from repro.sparklite.planner import estimated_cardinalities, order_joins
from repro.sparklite.query import StarQuery
from repro.sparklite.shuffle_exec import SparkCosts


@dataclass(frozen=True)
class ExecutorChoice:
    """The chooser's decision with its evidence."""

    executor: str  # "indexed" | "shuffle"
    shuffle_estimate: float
    indexed_estimate: float

    @property
    def advantage(self) -> float:
        """Estimated cost ratio of the losing plan over the winner."""
        lo = min(self.shuffle_estimate, self.indexed_estimate)
        hi = max(self.shuffle_estimate, self.indexed_estimate)
        return hi / lo if lo > 0 else float("inf")


def estimate_shuffle_cost(
    query: StarQuery,
    n_nodes: int,
    costs: SparkCosts | None = None,
    order: list[int] | None = None,
) -> float:
    """Closed-form estimate of the shuffle plan's makespan."""
    costs = costs if costs is not None else SparkCosts()
    order = order if order is not None else order_joins(query)
    entering = estimated_cardinalities(query, order)
    total = costs.stage_overhead  # scan stage
    bandwidth = 125_000_000.0
    for rows in entering:
        per_node_rows = rows / n_nodes
        cpu = per_node_rows * (
            costs.serialize_cpu + costs.deserialize_cpu + costs.probe_cpu
        )
        wire = per_node_rows * costs.fact_row_bytes / bandwidth
        total += costs.stage_overhead + cpu + wire
    total += costs.stage_overhead  # final aggregation stage
    return total


def estimate_indexed_cost(
    query: StarQuery,
    n_compute: int,
    costs: IndexedCosts | None = None,
    order: list[int] | None = None,
) -> float:
    """Closed-form estimate of the indexed plan's makespan."""
    costs = costs if costs is not None else IndexedCosts()
    order = order if order is not None else order_joins(query)
    entering = estimated_cardinalities(query, order)
    bandwidth = 125_000_000.0
    #: Amortized cost of one remote lookup (round trip, batched,
    #: per-item server overhead) — what every *first* touch of a
    #: dimension key pays before the ski-rental caches it.
    remote_lookup = 1e-4
    total = costs.job_overhead
    total += len(query.fact) * costs.scan_cpu / n_compute
    for stage_position, index in enumerate(order):
        join = query.joins[index]
        rows = entering[stage_position]
        # Distinct dimension keys this stage touches: bounded by both
        # the dimension's size and the row count.
        referenced = min(len(join.dimension), rows)
        # Reused touches become local cache probes; first touches pay
        # the remote lookup.  With reuse ~ 1 (referenced ~ rows) the
        # whole stage is remote — the regime where shuffle wins.
        reused = max(rows - referenced, 0.0)
        total += reused * costs.probe_cpu / n_compute
        total += referenced * remote_lookup / n_compute
        total += referenced * costs.dim_row_bytes / bandwidth
    return total


def choose_executor(
    query: StarQuery,
    n_nodes: int,
    n_compute: int | None = None,
    order: list[int] | None = None,
) -> ExecutorChoice:
    """Pick the cheaper plan for ``query`` (the Catalyst hook).

    Examples
    --------
    A selective star query over small dimensions chooses the indexed
    framework plan; a join against a dimension as large as the fact
    table (keys barely reused) falls back to shuffle.
    """
    compute = n_compute if n_compute is not None else max(n_nodes // 2, 1)
    shuffle = estimate_shuffle_cost(query, n_nodes, order=order)
    indexed = estimate_indexed_cost(query, compute, order=order)
    executor = "indexed" if indexed <= shuffle else "shuffle"
    return ExecutorChoice(
        executor=executor,
        shuffle_estimate=shuffle,
        indexed_estimate=indexed,
    )
