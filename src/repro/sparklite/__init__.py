"""Mini Spark/SparkSQL analog for the multi-join experiment (Figure 7).

Figure 7 runs four TPC-DS queries two ways: plain SparkSQL (Catalyst
plans, shuffle hash joins for every join) versus the paper's framework
(store_sales read at the compute nodes, dimension joins executed as
pipelined indexed lookups against the parallel data store with
ski-rental caching and load balancing — no shuffle).

This package provides both sides on a shared representation:

* :mod:`relation` / :mod:`expressions` / :mod:`operators` — a real,
  in-memory relational executor (correct answers, used to validate
  both timing paths agree on cardinalities),
* :mod:`planner` — left-deep join ordering from simple cardinality
  estimates (the Catalyst stand-in; both executors use its order, as
  the paper does),
* :mod:`shuffle_exec` — simulated SparkSQL: shuffle both sides of
  every join across the cluster,
* :mod:`indexed_exec` — simulated "our framework": pipelined
  per-tuple indexed joins via :class:`repro.engine.MultiJoinJob`.
"""

from repro.sparklite.rdd import RDD
from repro.sparklite.relation import Relation, Schema
from repro.sparklite.expressions import And, Predicate
from repro.sparklite.operators import (
    group_aggregate,
    hash_join,
    project,
    select,
)
from repro.sparklite.query import DimensionJoin, StarQuery
from repro.sparklite.planner import order_joins
from repro.sparklite.chooser import ExecutorChoice, choose_executor
from repro.sparklite.shuffle_exec import ShuffleExecutor, ShuffleQueryResult
from repro.sparklite.indexed_exec import IndexedExecutor, IndexedQueryResult

__all__ = [
    "RDD",
    "Relation",
    "Schema",
    "And",
    "Predicate",
    "group_aggregate",
    "hash_join",
    "project",
    "select",
    "DimensionJoin",
    "StarQuery",
    "order_joins",
    "ExecutorChoice",
    "choose_executor",
    "ShuffleExecutor",
    "ShuffleQueryResult",
    "IndexedExecutor",
    "IndexedQueryResult",
]
