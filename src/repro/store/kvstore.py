"""The logical parallel KV store: routing, updates, notifications.

:class:`KVStore` binds a :class:`~repro.store.table.Table` to a
:class:`~repro.store.partitioner.RegionMap` and provides:

* key-routed access (``get``/``put``/``node_for_key``),
* region-aware request grouping — the paper's wrapper API that sends
  each ``(k, p)`` pair only to the region whose range contains ``k``
  instead of broadcasting the batch to every region on the node
  (Appendix D.3),
* update listeners — the targeted cache-invalidation channel of
  Section 4.2.3: data nodes remember which compute nodes cached a row
  and notify exactly those on change.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Hashable, Iterable

from repro.store.partitioner import RegionMap
from repro.store.table import Row, Table

#: Signature of an update listener: (key, new_timestamp) -> None.
UpdateListener = Callable[[Hashable, float], None]


class KVStore:
    """Partitioned keyed store with update notification support."""

    def __init__(self, table: Table, region_map: RegionMap) -> None:
        self.table = table
        self.region_map = region_map
        # key -> {subscriber_id: listener}: who cached this row.
        self._listeners: dict[Hashable, dict[int, UpdateListener]] = defaultdict(dict)
        self._notifications_sent = 0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def node_for_key(self, key: Hashable) -> int:
        """Data node owning ``key``."""
        return self.region_map.node_for_key(key)

    def group_by_node(
        self, keys: Iterable[Hashable]
    ) -> dict[int, list[Hashable]]:
        """Group keys by owning data node (client-side batching aid)."""
        grouped: dict[int, list[Hashable]] = defaultdict(list)
        for key in keys:
            grouped[self.node_for_key(key)].append(key)
        return dict(grouped)

    def group_by_region(
        self, keys: Iterable[Hashable]
    ) -> dict[int, list[Hashable]]:
        """Group keys by region (Appendix D.3 wrapper API).

        With the default HBase API a batch sent to a node hosting ``r``
        regions would be replicated ``r`` times; grouping per region
        sends each ``(k, p)`` pair exactly once.
        """
        grouped: dict[int, list[Hashable]] = defaultdict(list)
        for key in keys:
            grouped[self.region_map.region_of(key)].append(key)
        return dict(grouped)

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Row:
        """Fetch the row for ``key`` (logical access, no timing)."""
        return self.table.get(key)

    def put(self, row: Row, at_time: float = 0.0) -> None:
        """Insert or replace a row and notify cached copies."""
        existed = row.key in self.table
        self.table.put(row, at_time=at_time)
        if existed:
            self._notify(row.key, at_time)

    def update_value(
        self, key: Hashable, value: Any, at_time: float, size: float | None = None
    ) -> Row:
        """Mutate a row in place, bumping its timestamp and notifying."""
        row = self.table.update_value(key, value, at_time, size=size)
        self._notify(key, at_time)
        return row

    # ------------------------------------------------------------------
    # Update notifications (Section 4.2.3)
    # ------------------------------------------------------------------
    def subscribe(
        self, key: Hashable, subscriber_id: int, listener: UpdateListener
    ) -> None:
        """Record that ``subscriber_id`` cached ``key``.

        The data node keeps this map so that updates notify only the
        compute nodes actually holding a stale copy, instead of
        broadcasting to the whole cluster.
        """
        self._listeners[key][subscriber_id] = listener

    def unsubscribe(self, key: Hashable, subscriber_id: int) -> None:
        """Forget a cached-copy record (e.g. after eviction)."""
        subs = self._listeners.get(key)
        if subs is not None:
            subs.pop(subscriber_id, None)
            if not subs:
                del self._listeners[key]

    @property
    def notifications_sent(self) -> int:
        """Total targeted invalidations delivered."""
        return self._notifications_sent

    def _notify(self, key: Hashable, at_time: float) -> None:
        subs = self._listeners.get(key)
        if not subs:
            return
        for listener in list(subs.values()):
            listener(key, at_time)
            self._notifications_sent += 1
