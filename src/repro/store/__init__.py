"""Parallel data store substrate (HBase analog).

The paper stores the indexed join relation in HBase: tables are split
into key ranges ("regions"), each hosted by a data node; clients route
requests by key, can batch them per node, and can push user-defined
function execution to the data nodes (coprocessor endpoints).

This package reproduces that surface:

* :class:`Table`, :class:`Row` — keyed storage with update timestamps,
* :class:`HashPartitioner` / :class:`RangePartitioner` +
  :class:`RegionMap` — key -> region -> node routing,
* :class:`KVStore` — the logical store: get/put, batched access,
  region-aware request grouping (the paper's wrapper API that sends
  each ``(k, p)`` only to the region owning ``k``), update listeners,
* :class:`DataNodeServer` — the simulated server side: disk fetches,
  UDF execution and the load-balancing hook, all timed on the cluster's
  resources.
"""

from repro.store.table import Row, Table
from repro.store.partitioner import (
    HashPartitioner,
    RangePartitioner,
    RegionMap,
)
from repro.store.kvstore import KVStore
from repro.store.messages import (
    BatchRequest,
    BatchResponse,
    RequestBlock,
    RequestItem,
    RequestKind,
    ResponseBlock,
    ResponseItem,
    UDF,
)
from repro.store.datanode import DataNodeServer, ServedBatch
from repro.placement.balancer import (
    RegionMove,
    apply_rebalance,
    node_loads,
    plan_rebalance,
)

__all__ = [
    "Row",
    "Table",
    "HashPartitioner",
    "RangePartitioner",
    "RegionMap",
    "KVStore",
    "BatchRequest",
    "BatchResponse",
    "RequestBlock",
    "RequestItem",
    "RequestKind",
    "ResponseBlock",
    "ResponseItem",
    "UDF",
    "DataNodeServer",
    "ServedBatch",
    "RegionMove",
    "apply_rebalance",
    "node_loads",
    "plan_rebalance",
]
