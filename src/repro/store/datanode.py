"""Simulated data-node server: disk fetches, UDF execution, balancing.

The server owns a node's disk and CPU resources for the store side of
the workload.  For every arriving :class:`~repro.engine.requests.BatchRequest`
it:

1. decides, via the :class:`~repro.placement.batch.BatchLoadBalancer`,
   how many of the batch's compute requests to execute locally (``d``)
   — the rest are answered with raw stored values,
2. reserves the disk for each row fetch ("disk access cost will be
   incurred at the data node" regardless of the decision, Section 5),
3. reserves the CPU for each locally executed UDF invocation,
4. assembles a :class:`~repro.engine.requests.BatchResponse` carrying,
   for every item, the row's cost parameters and update timestamp.

Queue counters needed by Appendix C's load formulas are maintained by
scheduling decrement events at each item's completion time.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from heapq import heapreplace
from typing import TYPE_CHECKING

from repro.core.cost_model import CostParameters
from repro.perf.mode import reference_mode
from repro.core.smoothing import SmoothedValue
from repro.placement.batch import (
    BatchLoadBalancer,
    ComputeNodeStats,
    DataNodeStats,
    SizeProfile,
)
from repro.placement.service import WrongRegion
from repro.obs.tracer import NO_TRACER, Span, Tracer
from repro.store.messages import (
    BatchRequest,
    BatchResponse,
    ResponseBlock,
    ResponseItem,
    UDF,
)
from repro.sim.cluster import Cluster, Node
from repro.store.kvstore import KVStore
from repro.vector.kernels import disk_service_times, serial_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memory.hybrid_join import HybridHashJoin


@dataclass(frozen=True)
class ServedBatch:
    """Result of serving one request batch."""

    response: BatchResponse
    ready_at: float
    kept_at_data_node: int


class DataNodeServer:
    """Server-side request handling for one data node.

    Parameters
    ----------
    cluster:
        The simulated cluster (provides the node's resources and clock).
    node_id:
        Which node this server runs on.
    kvstore:
        The logical store holding this node's regions (shared object;
        routing guarantees only owned keys arrive here).
    udf:
        The user function to execute for compute requests.
    balancer:
        The load-balancing policy for compute batches.
    per_item_overhead:
        Fixed CPU seconds of request-handling overhead per item
        (serialization, dispatch); batching exists to amortize this
        (Section 7.2).
    """

    def __init__(
        self,
        cluster: Cluster,
        node_id: int,
        kvstore: KVStore,
        udf: UDF,
        balancer: BatchLoadBalancer | None = None,
        per_item_overhead: float = 0.00005,
        batched_seek_factor: float = 0.25,
        block_cache_bytes: float = 0.0,
        columnar: bool = True,
        tracer: Tracer = NO_TRACER,
    ) -> None:
        if not 0.0 < batched_seek_factor <= 1.0:
            raise ValueError("batched_seek_factor must be in (0, 1]")
        if block_cache_bytes < 0:
            raise ValueError("block_cache_bytes must be non-negative")
        self.cluster = cluster
        self.node_id = node_id
        self.kvstore = kvstore
        self.udf = udf
        self.balancer = balancer if balancer is not None else BatchLoadBalancer()
        self.tracer = tracer
        self.per_item_overhead = per_item_overhead
        # Batched multi-gets within a region are served in key order,
        # so seeks after the first are short (elevator scheduling);
        # single unbatched gets pay the full random seek every time.
        # This is the disk-side benefit of batching (Section 7.2).
        self.batched_seek_factor = batched_seek_factor
        # HBase block cache: rows read while the cache has room are
        # served from memory on later reads.  Disabled by default —
        # the paper's big-store experiments deliberately exceed memory
        # — but essential for small, hot tables (TPC-DS dimensions).
        self.block_cache_bytes = block_cache_bytes
        self._block_cached: set = set()
        self._block_cache_used = 0.0
        #: HFile block size: one seek reads a whole block, so small
        #: adjacent rows share positioning costs (per-region read
        #: counters approximate block locality without sort order).
        self.block_bytes = 65536.0
        self._region_reads: dict[int, int] = defaultdict(int)
        self._node: Node = cluster.node(node_id)
        # Measured-over-service sojourn ratio of UDF executions here;
        # reported costs scale pure service by this, so compute nodes
        # see load-inflated "measured CPU time" exactly as a real
        # implementation timing its coprocessor calls would.
        self._sojourn_ratio = SmoothedValue(alpha=0.2, initial=1.0)
        # Appendix C queue counters.
        self._pending_data = 0  # ndc_j
        self._pending_compute: dict[int, int] = defaultdict(int)  # nrd_ij
        self._to_compute: dict[int, int] = defaultdict(int)  # rd_ij
        self._items_served = 0
        self._udfs_executed = 0
        # Idempotency: responses by request id.  A retried or
        # network-duplicated batch is answered from here — no UDF
        # re-execution, no disk work, no double-counting (the paper's
        # Section 9.1.1 restart observation, made a guarantee).
        self._response_cache: dict[str, BatchResponse] = {}
        self._duplicate_requests = 0
        # Straggler windows: (start, end, slowdown) factors scaling
        # every disk and CPU service time while active.
        self._slowdowns: list[tuple[float, float, float]] = []
        # Optimized-mode serving loop (batch invariants hoisted out of
        # the per-item body); reference mode keeps the per-item calls.
        self._fast_serve = not reference_mode()
        # Columnar serving kernel (repro.vector): the per-batch disk
        # reservations collapse into one serial chain and responses are
        # emitted as one ResponseBlock instead of per-item envelopes.
        # Only valid when the disk is a single-server resource (the
        # chain recurrence models back-to-back reservations on one
        # arm) and the block cache is off (cached keys would break the
        # chain's uniform service times).
        self._block_serve = (
            self._fast_serve
            and columnar
            and block_cache_bytes == 0
            and len(self._node.disk._free) == 1
        )
        # Memory-adaptive execution (opt-in via :meth:`arm_memory`):
        # a budget-governed spilling hybrid-hash build side standing in
        # front of the disk.  ``None`` keeps serving bit-identical.
        self.hybrid: "HybridHashJoin | None" = None
        self._hybrid_keys: set = set()
        self._hybrid_hits = 0
        self._hybrid_unspills = 0

    # ------------------------------------------------------------------
    # Memory-adaptive execution
    # ------------------------------------------------------------------
    def arm_memory(self, budget, options, owner: str | None = None) -> None:
        """Install the budget-governed spilling build side.

        Rows read from disk enter a :class:`HybridHashJoin` charged
        against ``budget``; later reads of a memory-resident row skip
        the disk entirely, reads of a spilled row pay the (cheaper,
        sequential) unspill instead of a random read, and budget
        pressure spills whole partitions — degrading service latency
        gracefully instead of failing.  Spill/unspill traffic is priced
        through :func:`repro.vector.kernels.disk_service_times` and
        reserved on this node's disk arm, so the cost shows up in
        makespans the same way every other disk access does.

        The columnar block-serve kernel assumes uniform per-item disk
        service times, which hybrid hits break — serving falls back to
        the hoisted per-item loop while armed.
        """
        from repro.memory.hybrid_join import HybridHashJoin

        spec = self._node.spec
        seek = spec.disk_seek * self.batched_seek_factor
        bandwidth = spec.disk_bandwidth

        def io_cost(nbytes: float, op: str) -> float:
            # Whole-partition spills are sequential: one short seek
            # plus the streamed bytes, both ways.
            return disk_service_times([seek], [nbytes], bandwidth, 1.0)[0]

        self.hybrid = HybridHashJoin(
            budget=budget,
            n_partitions=options.join_partitions,
            max_recursion=options.max_recursion,
            owner=owner or f"build-{self.node_id}",
            io_cost=io_cost,
        )
        self._hybrid_keys = set()
        self._block_serve = False

    def memory_counters(self) -> dict[str, float]:
        """Hybrid build-side counters (``memory.*`` registry fodder)."""
        if self.hybrid is None:
            return {}
        counts = dict(self.hybrid.counters())
        counts["build_hits"] = self._hybrid_hits
        counts["build_unspill_reads"] = self._hybrid_unspills
        return counts

    def _hybrid_disk_arm(
        self, at: float, key, size: float, slow: float
    ) -> tuple[float, float] | None:
        """Serve ``key``'s disk step through the hybrid build side.

        Returns ``(disk_time, disk_done)``, or ``None`` when the hybrid
        has never seen the key (caller performs the normal disk read
        and then calls :meth:`_hybrid_admit`).
        """
        hybrid = self.hybrid
        assert hybrid is not None
        if key not in self._hybrid_keys:
            return None
        status, _values = hybrid.probe(key)
        if status == "hit":
            self._hybrid_hits += 1
            return 0.0, at
        # Spilled partition: pay the sequential unspill on the disk
        # arm (recursive repartitions included in the returned cost).
        _values, io = hybrid.fetch_spilled(key)
        self._hybrid_unspills += 1
        disk_time = io * slow
        _start, disk_done = self._node.disk.acquire(at, disk_time)
        return disk_time, disk_done

    def _hybrid_admit(self, key, size: float, disk_done: float, slow: float) -> float:
        """Insert a freshly read row; charge any spill it forced.

        Returns the disk-arm finish time (``disk_done`` extended by the
        spill write when the insert displaced a partition).
        """
        hybrid = self.hybrid
        assert hybrid is not None
        io = hybrid.insert(key, True, size)
        self._hybrid_keys.add(key)
        if io > 0.0:
            _start, disk_done = self._node.disk.acquire(disk_done, io * slow)
        return disk_done

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def add_slowdown(self, start: float, end: float, factor: float) -> None:
        """Make this node a straggler: scale service times by ``factor``
        during ``[start, end)``."""
        if factor < 1.0:
            raise ValueError("slowdown factor must be >= 1")
        if end <= start:
            raise ValueError("slowdown window must have positive length")
        self._slowdowns.append((start, end, factor))

    def speed_factor(self, at: float) -> float:
        """Service-time multiplier in effect at ``at`` (1.0 = healthy)."""
        factor = 1.0
        for start, end, slow in self._slowdowns:
            if start <= at < end:
                factor = max(factor, slow)
        return factor

    # ------------------------------------------------------------------
    # Statistics for the load balancer
    # ------------------------------------------------------------------
    def local_stats(self, src: int, sizes: SizeProfile) -> DataNodeStats:
        """Snapshot of this node's queues for a batch from ``src``."""
        at = self.cluster.sim.now
        nrd_j = sum(self._pending_compute.values())
        rd_j = sum(self._to_compute.values())
        # Pending outbound responses (ndrd_j): infer from the NIC tx
        # backlog — booked egress seconds translated back into
        # value-sized items.
        bw = self.cluster.network.node_bandwidth(self.node_id)
        tx_seconds = self.cluster.network.tx_backlog(self.node_id, at)
        item_bytes = max(sizes.value_size, 1.0)
        ndrd_j = int(tx_seconds * bw / item_bytes)
        return DataNodeStats(
            pending_data_requests=self._pending_data,
            pending_data_responses=ndrd_j,
            pending_compute_requests=nrd_j,
            to_compute_locally=rd_j,
            pending_from_this_compute_node=self._pending_compute[src],
            to_compute_from_this_compute_node=self._to_compute[src],
            compute_time=self._udf_time_estimate(),
            net_bandwidth=bw,
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(
        self,
        at: float,
        batch: BatchRequest,
        sizes: SizeProfile,
        parent_span: Span | None = None,
    ) -> ServedBatch:
        """Serve one batch arriving at time ``at``.

        Returns the response and the time at which it is fully
        assembled and ready to transfer back.  ``parent_span`` nests
        the ``serve`` span under the request that carried the batch.
        """
        if batch.dst != self.node_id:
            raise ValueError(
                f"batch addressed to node {batch.dst} arrived at node {self.node_id}"
            )
        span: Span | None = None
        if self.tracer.enabled:
            span = self.tracer.start(
                "serve", parent=parent_span, at=at,
                node=self.node_id, items=len(batch),
            )
        if batch.request_id is not None and batch.request_id in self._response_cache:
            # Idempotent replay: the work already happened; answer from
            # the response cache at request-handling overhead only.
            self._duplicate_requests += 1
            cached = self._response_cache[batch.request_id]
            _c, finish = self._node.cpu.acquire(
                at, self.per_item_overhead * max(len(batch), 1)
            )
            replay = BatchResponse(
                src=cached.src,
                dst=cached.dst,
                items=cached._items,
                block=cached.block,
                request_id=cached.request_id,
                replayed=True,
            )
            if span is not None:
                self.tracer.end(span, at=finish, status="replayed")
            return ServedBatch(response=replay, ready_at=finish, kept_at_data_node=0)
        region_map = self.kvstore.region_map
        if getattr(region_map, "elastic_active", False):
            # Ownership check under the *current* placement epoch,
            # before any effect (no disk, no CPU, no response-cache
            # entry): a batch routed under a stale epoch gets a
            # WrongRegion redirect instead of a wrong answer.  The
            # current owner, a hot-key replica, or the pre-cutover
            # owner inside its double-serve window all pass.
            keys = [k for k, _t, _r, _p in batch.compute_entries()]
            keys.extend(k for k, _t, _r, _p in batch.data_entries())
            owners, stalled = region_map.check_batch(keys, self.node_id, at)
            if owners:
                region_map.counters["redirects"] += 1
                if stalled:
                    region_map.counters["cutover_stalls"] += 1
                if span is not None:
                    self.tracer.end(span, at=at, status="wrong_region")
                raise WrongRegion(region_map.generation, owners, stalled)
        src = batch.src
        n_compute = batch.n_compute
        self._pending_data += batch.n_data
        self._pending_compute[src] += n_compute

        if n_compute > 0 and batch.comp_stats is not None:
            data_stats = self.local_stats(src, sizes)
            d = self.balancer.choose(n_compute, batch.comp_stats, data_stats, sizes)
        else:
            # Without piggybacked statistics the node cannot balance;
            # it executes everything it was asked to (FD behaviour).
            d = n_compute
        self._to_compute[src] += d

        batched = len(batch) > 1
        response_items: list[ResponseItem] = []
        block: ResponseBlock | None = None
        if self._block_serve and not self._block_cached and len(batch) > 0:
            block = ResponseBlock(
                param_size=self.udf.param_size,
                key_size=self.udf.key_size,
                computed_size=self.udf.result_size,
                node_id=self.node_id,
            )
            maybe_ready = self._serve_block_fast(
                at, batch, d, src, n_compute, batched, block
            )
            if maybe_ready is None:
                # A zero-size row would enter the (zero-byte) block
                # cache on the reference path; bail out to the per-item
                # loop before any resource mutation.
                block = None
                ready_at = self._serve_batch_fast(
                    at, batch, d, src, n_compute, batched, response_items
                )
            else:
                ready_at = maybe_ready
        elif self._fast_serve:
            ready_at = self._serve_batch_fast(
                at, batch, d, src, n_compute, batched, response_items
            )
        else:
            ready_at = at
            for index, (key, tuple_id, route, params) in enumerate(
                batch.compute_entries()
            ):
                execute_here = index < d
                finish, resp = self._serve_item(
                    at, key, tuple_id, route, params, execute_here,
                    short_seek=batched and index > 0,
                )
                response_items.append(resp)
                if finish > ready_at:
                    ready_at = finish
                self._schedule_compute_decrement(
                    finish, src, executed=execute_here
                )
            for index, (key, tuple_id, route, params) in enumerate(
                batch.data_entries()
            ):
                short = batched and (index > 0 or n_compute > 0)
                finish, resp = self._serve_item(
                    at, key, tuple_id, route, params,
                    execute_here=False, short_seek=short,
                )
                response_items.append(resp)
                if finish > ready_at:
                    ready_at = finish
                self._schedule_data_decrement(finish)

        if block is not None:
            response = BatchResponse(
                src=self.node_id, dst=src, block=block,
                request_id=batch.request_id,
            )
        else:
            response = BatchResponse(
                src=self.node_id, dst=src, items=response_items,
                request_id=batch.request_id,
            )
        self._items_served += len(batch)
        if batch.request_id is not None:
            self._response_cache[batch.request_id] = response
        if span is not None:
            self.tracer.end(span, at=ready_at, kept_at_data_node=d)
        return ServedBatch(response=response, ready_at=ready_at, kept_at_data_node=d)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def items_served(self) -> int:
        """Total request items handled."""
        return self._items_served

    @property
    def udfs_executed(self) -> int:
        """UDF invocations executed at this data node."""
        return self._udfs_executed

    @property
    def duplicate_requests(self) -> int:
        """Batches answered from the idempotency cache."""
        return self._duplicate_requests

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _serve_item(
        self,
        at: float,
        key,
        tuple_id: int,
        route,
        req_params,
        execute_here: bool,
        short_seek: bool,
    ) -> tuple[float, ResponseItem]:
        """Serve one request given its fields as scalars.

        Taking scalars (rather than a :class:`RequestItem`) lets the
        caller iterate a columnar block's columns directly; the item
        path destructures into the same arguments.
        """
        row = self.kvstore.table.get_or_none(key)
        if row is None:
            raise KeyError(
                f"key {key!r} not found in table {self.kvstore.table.name!r}"
            )
        spec = self._node.spec
        # Straggler injection: a slowed node takes ``slow`` times longer
        # for every disk and CPU operation while the window is active.
        slow = self.speed_factor(at)
        if key in self._block_cached:
            # Block-cache hit: the row is already in server memory.
            disk_time = 0.0
            disk_done = at
        else:
            hybrid_step = (
                self._hybrid_disk_arm(at, key, row.size, slow)
                if self.hybrid is not None
                else None
            )
            if hybrid_step is not None:
                disk_time, disk_done = hybrid_step
            else:
                seek = spec.disk_seek * (
                    self.batched_seek_factor if short_seek else 1.0
                )
                if self.block_cache_bytes > 0:
                    # Rows much smaller than an HFile block share seeks:
                    # only every Nth uncached read in a region positions
                    # the head; the rest ride along in the same block.
                    rows_per_block = max(
                        int(self.block_bytes // max(row.size, 1.0)), 1
                    )
                    region = self.kvstore.region_map.region_of(key)
                    reads = self._region_reads[region]
                    self._region_reads[region] = reads + 1
                    if reads % rows_per_block != 0:
                        seek = 0.0
                disk_time = (seek + row.size / spec.disk_bandwidth) * slow
                _start, disk_done = self._node.disk.acquire(at, disk_time)
                if self._block_cache_used + row.size <= self.block_cache_bytes:
                    self._block_cached.add(key)
                    self._block_cache_used += row.size
                if self.hybrid is not None:
                    disk_done = self._hybrid_admit(
                        key, row.size, disk_done, slow
                    )
        service = self.udf.cost(row)
        if execute_here:
            # The coprocessor hydrates the stored bytes into a live
            # object for every invocation — unlike a compute node's
            # memory cache, nothing persists between calls.
            cpu_time = (row.hydration_cost + service + self.per_item_overhead) * slow
            _c, finish = self._node.cpu.acquire(disk_done, cpu_time)
            self._udfs_executed += 1
            # Runtime measurement: wall time per invocation, queueing
            # included — the signal that reveals an overloaded node.
            if cpu_time > 0:
                self._sojourn_ratio.observe((finish - disk_done) / cpu_time)
            payload = self.udf.result_size
            if self.udf.apply_fn is not None:
                # Real execution: the coprocessor computes f'(k, p, v).
                value = self.udf.apply(key, req_params, row.value)
            else:
                value = row.value  # timing sim: carry the raw value through
        else:
            _c, finish = self._node.cpu.acquire(
                disk_done, self.per_item_overhead * slow
            )
            payload = self.udf.key_size + row.size
            value = row.value
        ratio = max(self._sojourn_ratio.value, 1.0)
        params = CostParameters(
            key=key,
            value_size=row.size,
            compute_time=(service + row.hydration_cost) * ratio,
            disk_time=max(disk_done - at, disk_time),
            param_size=self.udf.param_size,
            key_size=self.udf.key_size,
            computed_size=self.udf.result_size,
            node_id=self.node_id,
            cpu_service_time=service,
            hydration_time=row.hydration_cost,
        )
        response = ResponseItem(
            key=key,
            tuple_id=tuple_id,
            route=route,
            computed=execute_here,
            value=value,
            payload_size=payload,
            cost_params=params,
            updated_at=row.updated_at,
            params=None if execute_here else req_params,
        )
        return finish, response

    def _serve_batch_fast(
        self,
        at: float,
        batch: BatchRequest,
        d: int,
        src: int,
        n_compute: int,
        batched: bool,
        response_items: list[ResponseItem],
    ) -> float:
        """Optimized-mode serving loop.

        The :meth:`_serve_item` body with the batch invariants hoisted
        out of the per-item path: the slowdown factor (every item sees
        the same arrival time), resource/heap handles, UDF callables
        and size constants.  Resource reservations use peek +
        ``heapreplace`` (same multiset as pop+push), queue decrements
        go through :meth:`Simulator.schedule_call` in identical event
        order, and every simulated quantity is computed with the
        reference expressions.
        """
        sim = self.cluster.sim
        schedule = sim.schedule_call
        table = self.kvstore.table
        table_get = table.get_or_none
        spec = self._node.spec
        slow = self.speed_factor(at)
        udf = self.udf
        cost_fn = udf.cost_fn
        apply_fn = udf.apply_fn
        overhead = self.per_item_overhead
        disk = self._node.disk
        cpu = self._node.cpu
        disk_free = disk._free
        cpu_free = cpu._free
        sr = self._sojourn_ratio
        sr_a = sr.alpha
        sr_b = 1.0 - sr_a
        bc_bytes = self.block_cache_bytes
        bc_on = bc_bytes > 0
        block_cached = self._block_cached
        full_seek = spec.disk_seek
        short_seek_time = full_seek * self.batched_seek_factor
        disk_bw = spec.disk_bandwidth
        pending_compute = self._pending_compute
        node_id = self.node_id
        key_size = udf.key_size
        param_size = udf.param_size
        result_size = udf.result_size
        append = response_items.append
        ready_at = at
        udfs = 0

        for compute_pass in (True, False):
            entries = (
                batch.compute_entries() if compute_pass else batch.data_entries()
            )
            index = 0
            for key, tuple_id, route, req_params in entries:
                row = table_get(key)
                if row is None:
                    raise KeyError(
                        f"key {key!r} not found in table {table.name!r}"
                    )
                rsize = row.size
                hybrid_step = None
                if key in block_cached:
                    disk_time = 0.0
                    disk_done = at
                elif self.hybrid is not None and (
                    hybrid_step := self._hybrid_disk_arm(at, key, rsize, slow)
                ) is not None:
                    disk_time, disk_done = hybrid_step
                else:
                    if compute_pass:
                        short = batched and index > 0
                    else:
                        short = batched and (index > 0 or n_compute > 0)
                    seek = short_seek_time if short else full_seek
                    if bc_on:
                        rows_per_block = max(
                            int(self.block_bytes // max(rsize, 1.0)), 1
                        )
                        region = self.kvstore.region_map.region_of(key)
                        reads = self._region_reads[region]
                        self._region_reads[region] = reads + 1
                        if reads % rows_per_block != 0:
                            seek = 0.0
                    disk_time = (seek + rsize / disk_bw) * slow
                    earliest = disk_free[0]
                    dstart = earliest if earliest > at else at
                    disk_done = dstart + disk_time
                    heapreplace(disk_free, disk_done)
                    disk._requests += 1
                    disk._busy_time += disk_time
                    disk._total_wait += dstart - at
                    if disk_done > disk._last_finish:
                        disk._last_finish = disk_done
                    if self._block_cache_used + rsize <= bc_bytes:
                        block_cached.add(key)
                        self._block_cache_used += rsize
                    if self.hybrid is not None:
                        disk_done = self._hybrid_admit(
                            key, rsize, disk_done, slow
                        )
                service = cost_fn(row) if cost_fn is not None else row.compute_cost
                if compute_pass and index < d:
                    cpu_time = (row.hydration_cost + service + overhead) * slow
                    earliest = cpu_free[0]
                    cstart = earliest if earliest > disk_done else disk_done
                    finish = cstart + cpu_time
                    heapreplace(cpu_free, finish)
                    cpu._requests += 1
                    cpu._busy_time += cpu_time
                    cpu._total_wait += cstart - disk_done
                    if finish > cpu._last_finish:
                        cpu._last_finish = finish
                    udfs += 1
                    if cpu_time > 0:
                        x = (finish - disk_done) / cpu_time
                        sr._value = sr_a * x + sr_b * sr._value
                        sr._observations += 1
                    payload = result_size
                    if apply_fn is not None:
                        value = apply_fn(key, req_params, row.value)
                    else:
                        value = row.value
                    executed = True
                else:
                    cpu_time = overhead * slow
                    earliest = cpu_free[0]
                    cstart = earliest if earliest > disk_done else disk_done
                    finish = cstart + cpu_time
                    heapreplace(cpu_free, finish)
                    cpu._requests += 1
                    cpu._busy_time += cpu_time
                    cpu._total_wait += cstart - disk_done
                    if finish > cpu._last_finish:
                        cpu._last_finish = finish
                    payload = key_size + rsize
                    value = row.value
                    executed = False
                srv = sr._value
                ratio = srv if srv > 1.0 else 1.0
                waited = disk_done - at
                params = CostParameters(
                    key=key,
                    value_size=rsize,
                    compute_time=(service + row.hydration_cost) * ratio,
                    disk_time=waited if waited >= disk_time else disk_time,
                    param_size=param_size,
                    key_size=key_size,
                    computed_size=result_size,
                    node_id=node_id,
                    cpu_service_time=service,
                    hydration_time=row.hydration_cost,
                )
                append(
                    ResponseItem(
                        key=key,
                        tuple_id=tuple_id,
                        route=route,
                        computed=executed,
                        value=value,
                        payload_size=payload,
                        cost_params=params,
                        updated_at=row.updated_at,
                        params=None if executed else req_params,
                    )
                )
                if finish > ready_at:
                    ready_at = finish
                if compute_pass:
                    if executed:
                        def decrement(
                            _pc=pending_compute, _tc=self._to_compute, _s=src
                        ) -> None:
                            _pc[_s] -= 1
                            _tc[_s] -= 1
                    else:
                        def decrement(
                            _pc=pending_compute, _s=src
                        ) -> None:
                            _pc[_s] -= 1
                else:
                    def decrement() -> None:
                        self._pending_data -= 1
                schedule(finish, decrement)
                index += 1
        self._udfs_executed += udfs
        return ready_at

    def _serve_block_fast(
        self,
        at: float,
        batch: BatchRequest,
        d: int,
        src: int,
        n_compute: int,
        batched: bool,
        block: ResponseBlock,
    ) -> float | None:
        """Columnar serving kernel filling a :class:`ResponseBlock`.

        Array-at-a-time form of :meth:`_serve_batch_fast` for the
        no-block-cache case: a gather pass materializes the batch's
        row/size/seek columns, the capacity-1 disk's reservations
        collapse into one :func:`repro.vector.kernels.serial_chain`
        (``finish[i] = finish[i-1] + service[i]`` — exactly the per-item
        peek + ``heapreplace`` recurrence), and per-item responses are
        appended to the block's columns instead of allocating a
        ``CostParameters`` + ``ResponseItem`` pair per tuple.  The CPU
        is a multi-server heap, so its reservations stay per item; disk
        and CPU are independent resources and each item's CPU start
        depends only on its own disk finish, so running the whole disk
        pass first is value-identical to the interleaved order.
        Resource accounting folds stay sequential Python loops (numpy
        reductions round differently).  Returns ``None`` — before any
        mutation — if a zero-size row is present, which the reference
        path would admit into the (zero-byte) block cache.
        """
        sim = self.cluster.sim
        schedule = sim.schedule_call
        table = self.kvstore.table
        table_get = table.get_or_none
        spec = self._node.spec
        slow = self.speed_factor(at)
        udf = self.udf
        cost_fn = udf.cost_fn
        apply_fn = udf.apply_fn
        overhead = self.per_item_overhead
        disk = self._node.disk
        cpu = self._node.cpu
        disk_free = disk._free
        cpu_free = cpu._free
        sr = self._sojourn_ratio
        sr_a = sr.alpha
        sr_b = 1.0 - sr_a
        full_seek = spec.disk_seek
        short_seek = full_seek * self.batched_seek_factor
        key_size = udf.key_size
        result_size = udf.result_size
        pending_compute = self._pending_compute
        to_compute = self._to_compute

        # Gather pass (no mutation): aligned columns for the whole
        # batch, compute entries first then data entries — serve order.
        keys: list = []
        tuple_ids: list[int] = []
        routes: list = []
        req_params: list = []
        rows: list = []
        sizes: list[float] = []
        seeks: list[float] = []
        n_comp = 0
        for key, tuple_id, route, params in batch.compute_entries():
            row = table_get(key)
            if row is None:
                raise KeyError(
                    f"key {key!r} not found in table {table.name!r}"
                )
            if row.size <= 0:
                return None
            keys.append(key)
            tuple_ids.append(tuple_id)
            routes.append(route)
            req_params.append(params)
            rows.append(row)
            sizes.append(row.size)
            seeks.append(short_seek if (batched and n_comp > 0) else full_seek)
            n_comp += 1
        index = 0
        for key, tuple_id, route, params in batch.data_entries():
            row = table_get(key)
            if row is None:
                raise KeyError(
                    f"key {key!r} not found in table {table.name!r}"
                )
            if row.size <= 0:
                return None
            keys.append(key)
            tuple_ids.append(tuple_id)
            routes.append(route)
            req_params.append(params)
            rows.append(row)
            sizes.append(row.size)
            short = batched and (index > 0 or n_compute > 0)
            seeks.append(short_seek if short else full_seek)
            index += 1
        n = len(keys)
        if n == 0:
            return at

        # Disk pass: elementwise service times, then one serial chain
        # on the single disk arm.  Accounting folds mirror the per-item
        # ``+=`` sequence (same terms, same order, scalar floats).
        disk_times = disk_service_times(seeks, sizes, spec.disk_bandwidth, slow)
        base = disk_free[0]
        if not base > at:
            base = at
        finishes = serial_chain(base, disk_times)
        busy = disk._busy_time
        wait = disk._total_wait
        prev = base
        for i in range(n):
            busy += disk_times[i]
            wait += prev - at
            prev = finishes[i]
        disk._busy_time = busy
        disk._total_wait = wait
        disk._requests += n
        last = finishes[n - 1]
        disk_free[0] = last
        if last > disk._last_finish:
            disk._last_finish = last

        # CPU + response pass: per item (multi-server heap, opaque UDF),
        # appending straight into the block's columns.
        append = block.append
        ready_at = at
        udfs = 0
        for i in range(n):
            row = rows[i]
            disk_done = finishes[i]
            service = cost_fn(row) if cost_fn is not None else row.compute_cost
            executed = i < d and i < n_comp
            if executed:
                cpu_time = (row.hydration_cost + service + overhead) * slow
                earliest = cpu_free[0]
                cstart = earliest if earliest > disk_done else disk_done
                finish = cstart + cpu_time
                heapreplace(cpu_free, finish)
                cpu._requests += 1
                cpu._busy_time += cpu_time
                cpu._total_wait += cstart - disk_done
                if finish > cpu._last_finish:
                    cpu._last_finish = finish
                udfs += 1
                if cpu_time > 0:
                    x = (finish - disk_done) / cpu_time
                    sr._value = sr_a * x + sr_b * sr._value
                    sr._observations += 1
                payload = result_size
                if apply_fn is not None:
                    value = apply_fn(keys[i], req_params[i], row.value)
                else:
                    value = row.value
            else:
                cpu_time = overhead * slow
                earliest = cpu_free[0]
                cstart = earliest if earliest > disk_done else disk_done
                finish = cstart + cpu_time
                heapreplace(cpu_free, finish)
                cpu._requests += 1
                cpu._busy_time += cpu_time
                cpu._total_wait += cstart - disk_done
                if finish > cpu._last_finish:
                    cpu._last_finish = finish
                payload = key_size + row.size
                value = row.value
            srv = sr._value
            ratio = srv if srv > 1.0 else 1.0
            waited = disk_done - at
            dt = disk_times[i]
            append(
                keys[i],
                tuple_ids[i],
                routes[i],
                executed,
                value,
                payload,
                row.size,
                (service + row.hydration_cost) * ratio,
                waited if waited >= dt else dt,
                service,
                row.hydration_cost,
                row.updated_at,
                None if executed else req_params[i],
            )
            if finish > ready_at:
                ready_at = finish
            if i < n_comp:
                if executed:
                    def decrement(
                        _pc=pending_compute, _tc=to_compute, _s=src
                    ) -> None:
                        _pc[_s] -= 1
                        _tc[_s] -= 1
                else:
                    def decrement(  # type: ignore[misc]
                        _pc=pending_compute, _s=src
                    ) -> None:
                        _pc[_s] -= 1
            else:
                def decrement() -> None:  # type: ignore[misc]
                    self._pending_data -= 1
            schedule(finish, decrement)
        self._udfs_executed += udfs
        return ready_at

    def _udf_time_estimate(self) -> float:
        """Average UDF time at this node (``tcd``) from stored rows.

        Uses the mean compute cost over this node's rows; cheap and
        stable, standing in for the runtime-measured smoothed value.
        """
        regions = self.kvstore.region_map.regions_on_node(self.node_id)
        if not regions:
            return 0.0
        # Sampling every row each time would be quadratic; cache it.
        if not hasattr(self, "_tcd_cache"):
            total, count = 0.0, 0
            for row in self.kvstore.table.rows():
                if self.kvstore.region_map.node_for_key(row.key) == self.node_id:
                    total += self.udf.cost(row) + row.hydration_cost
                    count += 1
            self._tcd_cache = total / count if count else 0.0
        return self._tcd_cache

    def _schedule_compute_decrement(
        self, finish: float, src: int, executed: bool
    ) -> None:
        def decrement() -> None:
            self._pending_compute[src] -= 1
            if executed:
                self._to_compute[src] -= 1

        self.cluster.sim.schedule_at(finish, decrement)

    def _schedule_data_decrement(self, finish: float) -> None:
        def decrement() -> None:
            self._pending_data -= 1

        self.cluster.sim.schedule_at(finish, decrement)
