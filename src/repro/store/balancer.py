"""Deprecated shim: this module moved to :mod:`repro.placement.balancer`.

The long-term region rebalancing planner now lives in the placement
package, where the :class:`~repro.placement.elastic.ElasticCoordinator`
executes its plans as live migrations.  Importing any name from here
still works but emits a ``DeprecationWarning`` (promoted to an error in
this repo's own test suite); new code should import from
:mod:`repro.placement`.
"""

from __future__ import annotations

import warnings

from repro.placement import balancer as _balancer

_MOVED = (
    "RegionMove",
    "apply_rebalance",
    "node_loads",
    "plan_rebalance",
)


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"importing {name} from 'repro.store.balancer' is deprecated; "
            "use 'repro.placement'",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_balancer, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(_MOVED)
