"""Wire protocol between compute nodes and data nodes, plus the UDF.

The paper frames the application as invocations of ``f(k, p)``: fetch
the stored value ``v`` for key ``k``, then run the side-effect-free
user function ``f'(k, p, v)``.  :class:`UDF` captures that function for
both the timing simulation (CPU seconds per row) and real execution
(an optional ``apply`` callable used in correctness tests and in the
sparklite join executor).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Hashable

from repro.core.cost_model import CostParameters
from repro.placement.batch import ComputeNodeStats
from repro.core.optimizer import Route

if TYPE_CHECKING:  # imported lazily to avoid an engine <-> store cycle
    from repro.store.table import Row


@dataclass(frozen=True, slots=True)
class UDF:
    """The user function ``f'(k, p, v)`` (Section 3.1).

    Attributes
    ----------
    result_size:
        Size ``scv`` of the computed value in bytes.
    param_size:
        Average size ``sp`` of the extra parameters in bytes.
    key_size:
        Size ``sk`` of a key in bytes.
    cost_fn:
        CPU seconds for one invocation on a row.  Defaults to the row's
        ``compute_cost`` attribute, which the workload generators set.
    apply_fn:
        Optional real implementation ``(key, params, value) -> result``
        for correctness-checked execution.
    side_effect_free:
        False pins execution to the owning data node (see below).
    """

    result_size: float = 64.0
    param_size: float = 64.0
    key_size: float = 8.0
    cost_fn: Callable[[Row], float] | None = None
    apply_fn: Callable[[Hashable, Any, Any], Any] | None = None
    #: Section 3.1 considers only side-effect-free functions, which is
    #: what makes the execution site a free choice.  Marking a UDF as
    #: side-effecting (a paper future-work case) pins every invocation
    #: to the data node that owns the row — executed exactly once, at
    #: one site — so caching and load-balancer bounces are disabled
    #: for it.
    side_effect_free: bool = True

    def cost(self, row: Row) -> float:
        """CPU seconds of one invocation on ``row``."""
        if self.cost_fn is not None:
            return self.cost_fn(row)
        return row.compute_cost

    def apply(self, key: Hashable, params: Any, value: Any) -> Any:
        """Run the real function (raises if none was supplied)."""
        if self.apply_fn is None:
            raise ValueError("this UDF has no apply_fn (timing-only UDF)")
        return self.apply_fn(key, params, value)


class RequestKind(enum.Enum):
    """Wire-level request type."""

    COMPUTE = "compute"  # ship (k, p); data node may execute the UDF
    DATA = "data"  # fetch the stored value for caching


@dataclass(frozen=True, slots=True)
class RequestItem:
    """One ``(k, p)`` request inside a batch."""

    key: Hashable
    kind: RequestKind
    route: Route
    tuple_id: int
    params: Any = None

    @property
    def is_compute(self) -> bool:
        return self.kind is RequestKind.COMPUTE


class RequestBlock:
    """Columnar encoding of one request batch (structure of arrays).

    The optimized hot path keeps a batch as parallel ``keys`` /
    ``routes`` / ``tuple_ids`` / ``params`` lists instead of one
    :class:`RequestItem` dataclass per tuple — the batch buffer appends
    scalars, the transport forwards the block untouched, and the data
    node iterates the columns directly, so no per-tuple envelope object
    is ever allocated on the request path.  All entries share one
    :class:`RequestKind` (buffers are per-kind queues).  The reference
    path (``REPRO_PERF_REFERENCE=1``) keeps shipping ``RequestItem``
    lists; both encodings carry exactly the same fields, priced and
    served identically.
    """

    __slots__ = ("kind", "keys", "routes", "tuple_ids", "params")

    def __init__(
        self,
        kind: RequestKind,
        keys: list[Hashable] | None = None,
        routes: list[Route] | None = None,
        tuple_ids: list[int] | None = None,
        params: list[Any] | None = None,
    ) -> None:
        self.kind = kind
        self.keys: list[Hashable] = [] if keys is None else keys
        self.routes: list[Route] = [] if routes is None else routes
        self.tuple_ids: list[int] = [] if tuple_ids is None else tuple_ids
        self.params: list[Any] = [] if params is None else params

    def __len__(self) -> int:
        return len(self.keys)

    def append(
        self, key: Hashable, route: Route, tuple_id: int, params: Any = None
    ) -> None:
        """Append one request as scalars (no envelope allocation)."""
        self.keys.append(key)
        self.routes.append(route)
        self.tuple_ids.append(tuple_id)
        self.params.append(params)

    def entries(self):
        """Iterate ``(key, tuple_id, route, params)`` tuples."""
        return zip(self.keys, self.tuple_ids, self.routes, self.params)

    def to_items(self) -> list[RequestItem]:
        """Materialize the block as :class:`RequestItem` objects."""
        return [
            RequestItem(key=k, kind=self.kind, route=r, tuple_id=t, params=p)
            for k, t, r, p in self.entries()
        ]

    @classmethod
    def from_items(cls, kind: RequestKind, items: list[RequestItem]) -> "RequestBlock":
        """Columnarize an item list (items must all be of ``kind``)."""
        return cls(
            kind,
            keys=[i.key for i in items],
            routes=[i.route for i in items],
            tuple_ids=[i.tuple_id for i in items],
            params=[i.params for i in items],
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RequestBlock(kind={self.kind.name}, n={len(self.keys)})"


@dataclass(slots=True)
class BatchRequest:
    """A batch of requests from one compute node to one data node.

    Carries the compute node's queue statistics (Appendix C) so the
    data node can balance load without an extra round trip.  A batch
    carries its requests either as item lists (``compute_items`` /
    ``data_items``) or as one columnar :class:`RequestBlock` per kind
    (``compute_block`` / ``data_block``); the serving side iterates
    whichever is populated via :meth:`compute_entries` /
    :meth:`data_entries`.
    """

    src: int
    dst: int
    compute_items: list[RequestItem] = field(default_factory=list)
    data_items: list[RequestItem] = field(default_factory=list)
    comp_stats: ComputeNodeStats | None = None
    #: Idempotency token, unique per logical request across the whole
    #: job (``"<node>:<seq>"``).  Retries re-send the same id; the data
    #: node replays its cached response for an id it has already served
    #: instead of re-executing UDFs, so duplicated or retried compute
    #: requests are never double-counted.  ``None`` (direct unit-test
    #: construction) disables the idempotency machinery.
    request_id: str | None = None
    #: Retry attempt number, 0 for the first transmission.
    attempt: int = 0
    #: Columnar alternatives to the item lists (optimized hot path).
    compute_block: RequestBlock | None = None
    data_block: RequestBlock | None = None

    @property
    def n_compute(self) -> int:
        """Number of compute requests, whichever encoding carries them."""
        n = len(self.compute_items)
        if self.compute_block is not None:
            n += len(self.compute_block)
        return n

    @property
    def n_data(self) -> int:
        """Number of data requests, whichever encoding carries them."""
        n = len(self.data_items)
        if self.data_block is not None:
            n += len(self.data_block)
        return n

    def compute_entries(self):
        """Iterate compute requests as ``(key, tuple_id, route, params)``."""
        if self.compute_block is not None:
            return self.compute_block.entries()
        return (
            (i.key, i.tuple_id, i.route, i.params) for i in self.compute_items
        )

    def data_entries(self):
        """Iterate data requests as ``(key, tuple_id, route, params)``."""
        if self.data_block is not None:
            return self.data_block.entries()
        return ((i.key, i.tuple_id, i.route, i.params) for i in self.data_items)

    def __len__(self) -> int:
        return self.n_compute + self.n_data

    def request_bytes(self, key_size: float, param_size: float) -> float:
        """Bytes on the wire for this batch."""
        compute_bytes = self.n_compute * (key_size + param_size)
        data_bytes = self.n_data * key_size
        return compute_bytes + data_bytes


@dataclass(frozen=True, slots=True)
class ResponseItem:
    """One response inside a batch response.

    ``computed`` distinguishes values the data node already ran the UDF
    on (payload of ``scv`` bytes) from raw stored values the compute
    node must process locally (payload of ``sv`` bytes).  Every
    response carries the row's cost parameters (Section 4.3: "In either
    case, it sends the parameters for cost computation back") and its
    update timestamp (Section 4.2.3).
    """

    key: Hashable
    tuple_id: int
    route: Route
    computed: bool
    value: Any
    payload_size: float
    cost_params: CostParameters
    updated_at: float
    #: For uncomputed compute requests (load-balancer bounces), the
    #: original UDF parameters echoed back so the compute node can run
    #: the function locally.
    params: Any = None


class ResponseBlock:
    """Columnar encoding of one batch response (structure of arrays).

    The optimized serving kernel fills aligned per-item columns instead
    of allocating one :class:`ResponseItem` (plus its
    :class:`~repro.core.cost_model.CostParameters`) per tuple, and the
    compute node's batch handler folds the columns directly.  The four
    cost-parameter fields that are constant across a server's responses
    (``param_size``, ``key_size``, ``computed_size``, ``node_id``) are
    stored once on the block.  :meth:`to_items` materializes the
    classic item list when introspection needs it; both encodings carry
    exactly the same fields.
    """

    __slots__ = (
        "keys", "tuple_ids", "routes", "computed", "values",
        "payload_sizes", "value_sizes", "compute_times", "disk_times",
        "cpu_service_times", "hydration_times", "updated_ats", "params",
        "param_size", "key_size", "computed_size", "node_id",
    )

    def __init__(
        self,
        param_size: float = 0.0,
        key_size: float = 8.0,
        computed_size: float = 0.0,
        node_id: int = -1,
    ) -> None:
        self.param_size = param_size
        self.key_size = key_size
        self.computed_size = computed_size
        self.node_id = node_id
        self.keys: list[Hashable] = []
        self.tuple_ids: list[int] = []
        self.routes: list[Route] = []
        self.computed: list[bool] = []
        self.values: list[Any] = []
        self.payload_sizes: list[float] = []
        self.value_sizes: list[float] = []
        self.compute_times: list[float] = []
        self.disk_times: list[float] = []
        self.cpu_service_times: list[float] = []
        self.hydration_times: list[float] = []
        self.updated_ats: list[float] = []
        self.params: list[Any] = []

    def __len__(self) -> int:
        return len(self.keys)

    def append(
        self,
        key: Hashable,
        tuple_id: int,
        route: Route,
        computed: bool,
        value: Any,
        payload_size: float,
        value_size: float,
        compute_time: float,
        disk_time: float,
        cpu_service_time: float,
        hydration_time: float,
        updated_at: float,
        params: Any,
    ) -> None:
        """Append one response as scalars (no envelope allocation)."""
        self.keys.append(key)
        self.tuple_ids.append(tuple_id)
        self.routes.append(route)
        self.computed.append(computed)
        self.values.append(value)
        self.payload_sizes.append(payload_size)
        self.value_sizes.append(value_size)
        self.compute_times.append(compute_time)
        self.disk_times.append(disk_time)
        self.cpu_service_times.append(cpu_service_time)
        self.hydration_times.append(hydration_time)
        self.updated_ats.append(updated_at)
        self.params.append(params)

    def cost_params_at(self, index: int) -> CostParameters:
        """Materialize one item's :class:`CostParameters`."""
        return CostParameters(
            key=self.keys[index],
            value_size=self.value_sizes[index],
            compute_time=self.compute_times[index],
            disk_time=self.disk_times[index],
            param_size=self.param_size,
            key_size=self.key_size,
            computed_size=self.computed_size,
            node_id=self.node_id,
            cpu_service_time=self.cpu_service_times[index],
            hydration_time=self.hydration_times[index],
        )

    def to_items(self) -> list[ResponseItem]:
        """Materialize the block as :class:`ResponseItem` objects."""
        return [
            ResponseItem(
                key=self.keys[i],
                tuple_id=self.tuple_ids[i],
                route=self.routes[i],
                computed=self.computed[i],
                value=self.values[i],
                payload_size=self.payload_sizes[i],
                cost_params=self.cost_params_at(i),
                updated_at=self.updated_ats[i],
                params=self.params[i],
            )
            for i in range(len(self.keys))
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ResponseBlock(node={self.node_id}, n={len(self.keys)})"


class BatchResponse:
    """A batch of responses from one data node to one compute node.

    Carries its responses either as a :class:`ResponseItem` list or as
    one columnar :class:`ResponseBlock` (the optimized serving path).
    ``items`` on a block-backed response materializes (and caches) the
    item list, so introspection and the reference-mode handlers see the
    same shape either way.
    """

    __slots__ = ("src", "dst", "request_id", "replayed", "block", "_items")

    def __init__(
        self,
        src: int,
        dst: int,
        items: list[ResponseItem] | None = None,
        request_id: str | None = None,
        replayed: bool = False,
        block: ResponseBlock | None = None,
    ) -> None:
        self.src = src
        self.dst = dst
        #: Columnar alternative to the item list (optimized hot path).
        self.block = block
        if items is None and block is None:
            items = []
        self._items = items
        #: Echo of the request's idempotency token; the compute node
        #: drops any response whose id it has already accepted (late
        #: originals after a retry, network-duplicated responses).
        self.request_id = request_id
        #: True when this response was replayed from the data node's
        #: idempotency cache rather than served fresh.
        self.replayed = replayed

    @property
    def items(self) -> list[ResponseItem]:
        """Responses as items (materialized from the block on demand)."""
        if self._items is None:
            assert self.block is not None
            self._items = self.block.to_items()
        return self._items

    def __len__(self) -> int:
        if self.block is not None:
            return len(self.block)
        assert self._items is not None
        return len(self._items)

    def with_src(self, src: int) -> "BatchResponse":
        """Shallow copy with a rewritten source node id."""
        return BatchResponse(
            src=src,
            dst=self.dst,
            items=self._items,
            request_id=self.request_id,
            replayed=self.replayed,
            block=self.block,
        )

    @property
    def payload_bytes(self) -> float:
        """Total payload bytes on the wire."""
        if self.block is not None:
            return sum(self.block.payload_sizes)
        assert self._items is not None
        return sum(item.payload_size for item in self._items)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BatchResponse(src={self.src}, dst={self.dst}, "
            f"n={len(self)}, request_id={self.request_id!r})"
        )
