"""Wire protocol between compute nodes and data nodes, plus the UDF.

The paper frames the application as invocations of ``f(k, p)``: fetch
the stored value ``v`` for key ``k``, then run the side-effect-free
user function ``f'(k, p, v)``.  :class:`UDF` captures that function for
both the timing simulation (CPU seconds per row) and real execution
(an optional ``apply`` callable used in correctness tests and in the
sparklite join executor).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Hashable

from repro.core.cost_model import CostParameters
from repro.core.load_balancer import ComputeNodeStats
from repro.core.optimizer import Route

if TYPE_CHECKING:  # imported lazily to avoid an engine <-> store cycle
    from repro.store.table import Row


@dataclass(frozen=True)
class UDF:
    """The user function ``f'(k, p, v)`` (Section 3.1).

    Attributes
    ----------
    result_size:
        Size ``scv`` of the computed value in bytes.
    param_size:
        Average size ``sp`` of the extra parameters in bytes.
    key_size:
        Size ``sk`` of a key in bytes.
    cost_fn:
        CPU seconds for one invocation on a row.  Defaults to the row's
        ``compute_cost`` attribute, which the workload generators set.
    apply_fn:
        Optional real implementation ``(key, params, value) -> result``
        for correctness-checked execution.
    side_effect_free:
        False pins execution to the owning data node (see below).
    """

    result_size: float = 64.0
    param_size: float = 64.0
    key_size: float = 8.0
    cost_fn: Callable[[Row], float] | None = None
    apply_fn: Callable[[Hashable, Any, Any], Any] | None = None
    #: Section 3.1 considers only side-effect-free functions, which is
    #: what makes the execution site a free choice.  Marking a UDF as
    #: side-effecting (a paper future-work case) pins every invocation
    #: to the data node that owns the row — executed exactly once, at
    #: one site — so caching and load-balancer bounces are disabled
    #: for it.
    side_effect_free: bool = True

    def cost(self, row: Row) -> float:
        """CPU seconds of one invocation on ``row``."""
        if self.cost_fn is not None:
            return self.cost_fn(row)
        return row.compute_cost

    def apply(self, key: Hashable, params: Any, value: Any) -> Any:
        """Run the real function (raises if none was supplied)."""
        if self.apply_fn is None:
            raise ValueError("this UDF has no apply_fn (timing-only UDF)")
        return self.apply_fn(key, params, value)


class RequestKind(enum.Enum):
    """Wire-level request type."""

    COMPUTE = "compute"  # ship (k, p); data node may execute the UDF
    DATA = "data"  # fetch the stored value for caching


@dataclass(frozen=True)
class RequestItem:
    """One ``(k, p)`` request inside a batch."""

    key: Hashable
    kind: RequestKind
    route: Route
    tuple_id: int
    params: Any = None

    @property
    def is_compute(self) -> bool:
        return self.kind is RequestKind.COMPUTE


@dataclass
class BatchRequest:
    """A batch of requests from one compute node to one data node.

    Carries the compute node's queue statistics (Appendix C) so the
    data node can balance load without an extra round trip.
    """

    src: int
    dst: int
    compute_items: list[RequestItem] = field(default_factory=list)
    data_items: list[RequestItem] = field(default_factory=list)
    comp_stats: ComputeNodeStats | None = None
    #: Idempotency token, unique per logical request across the whole
    #: job (``"<node>:<seq>"``).  Retries re-send the same id; the data
    #: node replays its cached response for an id it has already served
    #: instead of re-executing UDFs, so duplicated or retried compute
    #: requests are never double-counted.  ``None`` (direct unit-test
    #: construction) disables the idempotency machinery.
    request_id: str | None = None
    #: Retry attempt number, 0 for the first transmission.
    attempt: int = 0

    def __len__(self) -> int:
        return len(self.compute_items) + len(self.data_items)

    def request_bytes(self, key_size: float, param_size: float) -> float:
        """Bytes on the wire for this batch."""
        compute_bytes = len(self.compute_items) * (key_size + param_size)
        data_bytes = len(self.data_items) * key_size
        return compute_bytes + data_bytes


@dataclass(frozen=True)
class ResponseItem:
    """One response inside a batch response.

    ``computed`` distinguishes values the data node already ran the UDF
    on (payload of ``scv`` bytes) from raw stored values the compute
    node must process locally (payload of ``sv`` bytes).  Every
    response carries the row's cost parameters (Section 4.3: "In either
    case, it sends the parameters for cost computation back") and its
    update timestamp (Section 4.2.3).
    """

    key: Hashable
    tuple_id: int
    route: Route
    computed: bool
    value: Any
    payload_size: float
    cost_params: CostParameters
    updated_at: float
    #: For uncomputed compute requests (load-balancer bounces), the
    #: original UDF parameters echoed back so the compute node can run
    #: the function locally.
    params: Any = None


@dataclass
class BatchResponse:
    """A batch of responses from one data node to one compute node."""

    src: int
    dst: int
    items: list[ResponseItem] = field(default_factory=list)
    #: Echo of the request's idempotency token; the compute node drops
    #: any response whose id it has already accepted (late originals
    #: after a retry, network-duplicated responses).
    request_id: str | None = None
    #: True when this response was replayed from the data node's
    #: idempotency cache rather than served fresh.
    replayed: bool = False

    def __len__(self) -> int:
        return len(self.items)

    @property
    def payload_bytes(self) -> float:
        """Total payload bytes on the wire."""
        return sum(item.payload_size for item in self.items)
