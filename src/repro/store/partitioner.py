"""Key -> region -> data node routing (HBase region model).

A *partitioner* maps keys to region ids; a :class:`RegionMap` assigns
regions to data nodes (possibly several regions per node, as in HBase)
and exposes the lookups the client API and the batching layer need.

Hash partitioning uses a stable (process-independent) hash so that runs
are reproducible across interpreter invocations — Python's built-in
``hash`` is salted per process for strings.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Sequence


# stable_hash is a pure function on the key's repr, and the hot paths
# (per-tuple key routing, LocalBackend partitioning) call it with a
# small working set of keys over and over — memoize it.  The cap
# bounds worst-case memory on adversarial key streams; on overflow the
# memo is dropped wholesale (a rebuild costs less than tracking LRU
# order on every call).
_HASH_MEMO: dict[Hashable, int] = {}
_HASH_MEMO_MAX = 1 << 16


def stable_hash(key: Hashable) -> int:
    """A deterministic 64-bit hash usable across processes."""
    cached = _HASH_MEMO.get(key)
    if cached is not None:
        return cached
    digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8).digest()
    value = int.from_bytes(digest, "big")
    if len(_HASH_MEMO) >= _HASH_MEMO_MAX:
        _HASH_MEMO.clear()
    _HASH_MEMO[key] = value
    return value


class HashPartitioner:
    """Uniformly hash keys into ``n_regions`` buckets."""

    def __init__(self, n_regions: int) -> None:
        if n_regions < 1:
            raise ValueError("n_regions must be >= 1")
        self.n_regions = n_regions

    def region_of(self, key: Hashable) -> int:
        """Region id owning ``key``."""
        return stable_hash(key) % self.n_regions


class RangePartitioner:
    """Range partitioning by sorted split points (HBase-style).

    ``boundaries`` are the *upper-exclusive* split keys: region ``i``
    holds keys ``boundaries[i-1] <= k < boundaries[i]`` with the first
    region open below and the last open above.

    Examples
    --------
    >>> p = RangePartitioner(["g", "p"])
    >>> p.n_regions
    3
    >>> [p.region_of(k) for k in ["a", "g", "z"]]
    [0, 1, 2]
    """

    def __init__(self, boundaries: Sequence) -> None:
        ordered = list(boundaries)
        if sorted(ordered) != ordered:
            raise ValueError("boundaries must be sorted ascending")
        if len(set(ordered)) != len(ordered):
            raise ValueError("boundaries must be distinct")
        self.boundaries = ordered
        self.n_regions = len(ordered) + 1

    def region_of(self, key) -> int:
        """Region id owning ``key``."""
        return bisect.bisect_right(self.boundaries, key)


class RegionMap:
    """Assignment of regions to data nodes.

    Parameters
    ----------
    partitioner:
        Maps keys to region ids.
    region_nodes:
        ``region_nodes[r]`` is the data node hosting region ``r``.

    Examples
    --------
    >>> rm = RegionMap(HashPartitioner(4), [10, 10, 11, 11])
    >>> sorted(rm.data_nodes)
    [10, 11]
    >>> rm.regions_on_node(11)
    [2, 3]
    """

    def __init__(
        self,
        partitioner: HashPartitioner | RangePartitioner,
        region_nodes: Sequence[int],
    ) -> None:
        if len(region_nodes) != partitioner.n_regions:
            raise ValueError(
                f"need one node per region: {partitioner.n_regions} regions, "
                f"{len(region_nodes)} assignments"
            )
        self.partitioner = partitioner
        self._region_nodes = list(region_nodes)
        #: Bumped on every region move; key->node caches key on this to
        #: stay exact across failover/rebalancing.
        self.generation = 0

    @classmethod
    def round_robin(
        cls,
        partitioner: HashPartitioner | RangePartitioner,
        data_nodes: Sequence[int],
    ) -> "RegionMap":
        """Spread regions over ``data_nodes`` round-robin (the balancer
        HBase runs keeps region *counts* even across nodes)."""
        if not data_nodes:
            raise ValueError("data_nodes must be non-empty")
        assignment = [
            data_nodes[r % len(data_nodes)] for r in range(partitioner.n_regions)
        ]
        return cls(partitioner, assignment)

    @property
    def n_regions(self) -> int:
        return self.partitioner.n_regions

    @property
    def data_nodes(self) -> set[int]:
        """The distinct nodes hosting at least one region."""
        return set(self._region_nodes)

    def region_of(self, key: Hashable) -> int:
        """Region id owning ``key``."""
        return self.partitioner.region_of(key)

    def node_for_region(self, region: int) -> int:
        """Data node hosting ``region``."""
        return self._region_nodes[region]

    def node_for_key(self, key: Hashable) -> int:
        """Data node owning ``key``."""
        return self._region_nodes[self.partitioner.region_of(key)]

    def regions_on_node(self, node: int) -> list[int]:
        """All regions hosted by ``node``."""
        return [r for r, n in enumerate(self._region_nodes) if n == node]

    def move_region(self, region: int, to_node: int) -> None:
        """Reassign a region (long-term data-node balancing hook)."""
        self._region_nodes[region] = to_node
        self.generation += 1
