"""Keyed table storage with per-row update timestamps.

Rows carry everything the simulation and the real executors need:

* ``value`` — an arbitrary payload (real data for correctness tests and
  the sparklite executor; opaque descriptors for pure-timing runs),
* ``size`` — the stored value size ``sv`` in bytes, which drives disk
  and network costs,
* ``compute_cost`` — CPU seconds one UDF invocation on this row takes
  (entity-annotation models have wildly different classification
  costs; Section 2.1),
* ``updated_at`` — last-update timestamp, piggybacked on compute
  responses for the staleness protocol of Section 4.2.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator


@dataclass
class Row:
    """One stored row of the indexed join relation.

    ``hydration_cost`` is the CPU cost of turning the stored bytes into
    a live object (e.g. deserializing a classification model).  It is
    paid per UDF invocation at a data node (the coprocessor re-reads
    the row each call) and once per fetch at a compute node — a
    memory-cached object skips it, which is a large part of why
    caching hot models wins in the entity-annotation workload.
    """

    key: Hashable
    value: Any = None
    size: float = 0.0
    compute_cost: float = 0.0
    updated_at: float = 0.0
    hydration_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("size must be non-negative")
        if self.compute_cost < 0 or self.hydration_cost < 0:
            raise ValueError("costs must be non-negative")


class Table:
    """A named collection of rows indexed by key.

    Examples
    --------
    >>> t = Table("models")
    >>> t.put(Row(key="jordan", size=1024.0))
    >>> t.get("jordan").size
    1024.0
    >>> len(t)
    1
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._rows: dict[Hashable, Row] = {}

    def put(self, row: Row, at_time: float | None = None) -> None:
        """Insert or replace a row; optionally stamping the update time."""
        if at_time is not None:
            row.updated_at = at_time
        self._rows[row.key] = row

    def get(self, key: Hashable) -> Row:
        """Fetch a row; raises KeyError if absent."""
        return self._rows[key]

    def get_or_none(self, key: Hashable) -> Row | None:
        """Fetch a row or None."""
        return self._rows.get(key)

    def update_value(
        self, key: Hashable, value: Any, at_time: float, size: float | None = None
    ) -> Row:
        """Mutate an existing row in place, bumping its timestamp."""
        row = self._rows[key]
        row.value = value
        row.updated_at = at_time
        if size is not None:
            if size < 0:
                raise ValueError("size must be non-negative")
            row.size = size
        return row

    def delete(self, key: Hashable) -> bool:
        """Remove a row; returns True if it existed."""
        return self._rows.pop(key, None) is not None

    def __contains__(self, key: Hashable) -> bool:
        return key in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def keys(self) -> Iterator[Hashable]:
        """Iterate over stored keys."""
        return iter(self._rows)

    def rows(self) -> Iterator[Row]:
        """Iterate over stored rows."""
        return iter(self._rows.values())

    def total_bytes(self) -> float:
        """Sum of row sizes — the stored data volume."""
        return sum(row.size for row in self._rows.values())
