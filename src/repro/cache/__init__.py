"""Two-tier (memory + disk) cache substrate (Section 4.2.2, Appendix B).

The paper caches "bought" items in a composite cache (Ehcache in their
implementation): a fast, size-limited memory tier backed by a much
larger disk tier.  Eviction from memory to disk is benefit-driven using
the weighted LFU-DA policy of Arlitt et al. [1], which favours recent
and frequent accesses.

This package is a faithful Python stand-in:

* :class:`LFUDAPolicy` — dynamic-aging frequency benefit,
* :class:`TieredCache` — the composite cache, implementing the paper's
  ``condCacheInMemory`` for both uniform (Algorithm 2) and variable
  (Algorithm 3) item sizes.
"""

from repro.cache.benefit import LFUDAPolicy
from repro.cache.tiered import CacheTier, TieredCache

__all__ = ["LFUDAPolicy", "TieredCache", "CacheTier"]
