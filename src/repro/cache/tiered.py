"""Composite memory + disk cache with benefit-driven placement.

Implements the paper's ``condCacheInMemory`` in both variants:

* **Algorithm 2** (uniform item sizes): evict the single minimum-benefit
  resident if the newcomer's benefit is strictly higher.
* **Algorithm 3** (variable item sizes): gather the least-benefit
  residents whose eviction would free enough space; admit the newcomer
  only if its benefit is at least their combined benefit, and retain
  the highest-benefit members of that preliminary list that still fit.

Evicted memory residents move to the disk tier (unless already there).
The disk tier is unbounded by default, matching the paper's assumption;
a byte limit may be set, in which case the lowest benefit-to-size ratio
entries are dropped entirely to make room (Appendix B note).

Probe mode — Algorithm 1 line 14 calls ``condCacheInMemory(k, phi,
itemSize)`` *before* the value has been fetched.  Here a positive
answer performs the evictions and **reserves** the space for the key,
so concurrent in-flight fetches cannot over-commit memory; the caller
completes the reservation with :meth:`TieredCache.fulfill` when the
value arrives (or :meth:`TieredCache.cancel_reservation` if it never
does, e.g. the row was updated meanwhile).
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Any, Hashable, Sequence

from repro.cache.benefit import LFUDAPolicy
from repro.perf.mode import reference_mode
from repro.vector.lanes import CacheLanes

#: Heap-compaction watermark: rebuild once more than this many dead
#: entries (keys no longer memory resident) have accumulated *and*
#: they outnumber the live entries.  Small caches stay on the pure
#: lazy path.
_COMPACT_MIN_DEAD = 64


class CacheTier(enum.Enum):
    """Where a cached item currently lives."""

    MEMORY = "memory"
    DISK = "disk"


@dataclass
class _Resident:
    """A cached item (or a reservation when ``value`` is None)."""

    value: Any
    size: float
    reserved: bool = False


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    memory_hits: int
    disk_hits: int
    misses: int
    mem_to_disk_evictions: int
    disk_evictions: int
    promotions: int


class TieredCache:
    """Memory + disk composite cache (Ehcache analog).

    Parameters
    ----------
    memory_bytes:
        Capacity of the memory tier.
    disk_bytes:
        Capacity of the disk tier; ``None`` (default) means unbounded,
        which is the paper's operating assumption.
    uniform:
        Select Algorithm 2 (True) or Algorithm 3 (False) admission.
    policy:
        Benefit policy; defaults to a fresh :class:`LFUDAPolicy`.
    drop_promoted_from_disk:
        If True, promoting an item from disk to memory removes the disk
        copy (saves disk space at the cost of a future write-back).
    """

    def __init__(
        self,
        memory_bytes: float,
        disk_bytes: float | None = None,
        uniform: bool = False,
        policy: LFUDAPolicy | None = None,
        drop_promoted_from_disk: bool = False,
        budget=None,
        budget_owner: str = "cache",
    ) -> None:
        if memory_bytes < 0:
            raise ValueError("memory_bytes must be non-negative")
        if disk_bytes is not None and disk_bytes < 0:
            raise ValueError("disk_bytes must be non-negative")
        self.memory_bytes = memory_bytes
        self.disk_bytes = disk_bytes
        self.uniform = uniform
        self.policy = policy if policy is not None else LFUDAPolicy()
        self.drop_promoted_from_disk = drop_promoted_from_disk
        # Optional per-node MemoryBudget arbiter; every memory-tier
        # admission charges it and every departure releases it.  With
        # budget=None (memory adaptation off) no code path below
        # consults it, so behavior is bit-identical to the unbudgeted
        # cache.
        self._budget = budget
        self._budget_owner = budget_owner
        self._budget_spills = 0
        if budget is not None:
            budget.add_reclaimer(budget_owner, self.reclaim)
        self._memory: dict[Hashable, _Resident] = {}
        self._disk: dict[Hashable, _Resident] = {}
        self._mem_used = 0.0
        self._disk_used = 0.0
        # Lazy min-heap over memory residents: (benefit, seq, key).
        self._mem_heap: list[tuple[float, int, Hashable]] = []
        self._seq = 0
        # Tombstone accounting for heap compaction.  ``_heap_entries``
        # counts heap entries per key; ``_heap_dead`` counts entries
        # whose key is no longer memory resident.  Compaction removes
        # *only* dead entries — the reference pop loop skips them with
        # zero side effects, so dropping them up front preserves the
        # exact eviction order — and stale-but-live duplicates are left
        # alone (their refresh-re-push path affects seq tie-breaking).
        # Disabled in reference mode.
        self._heap_entries: dict[Hashable, int] = {}
        self._heap_dead = 0
        self._compact_enabled = not reference_mode()
        self._memory_hits = 0
        self._disk_hits = 0
        self._misses = 0
        self._mem_to_disk = 0
        self._disk_evictions = 0
        self._promotions = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, key: Hashable) -> tuple[Any, CacheTier] | None:
        """Return ``(value, tier)`` for a hit, or None on a miss.

        Reservations (in-flight fetches) do not count as hits — the
        value is not yet available locally.
        """
        resident = self._memory.get(key)
        if resident is not None and not resident.reserved:
            self._memory_hits += 1
            return resident.value, CacheTier.MEMORY
        resident = self._disk.get(key)
        if resident is not None:
            self._disk_hits += 1
            return resident.value, CacheTier.DISK
        self._misses += 1
        return None

    def tier_of(self, key: Hashable) -> CacheTier | None:
        """Current tier of ``key`` (reservations count as MEMORY)."""
        if key in self._memory:
            return CacheTier.MEMORY
        if key in self._disk:
            return CacheTier.DISK
        return None

    def __contains__(self, key: Hashable) -> bool:
        return key in self._memory or key in self._disk

    # ------------------------------------------------------------------
    # Benefit maintenance (Algorithm 1, line 1)
    # ------------------------------------------------------------------
    def update_benefit(self, key: Hashable, weight: float = 1.0) -> float:
        """Record an access to ``key`` for benefit accounting."""
        benefit = self.policy.on_access(key, weight=weight)
        if key in self._memory:
            self._push_heap(key, benefit)
        return benefit

    def access_fast(
        self, key: Hashable, weight: float
    ) -> tuple[Any, CacheTier] | None:
        """Fused :meth:`update_benefit` + :meth:`lookup` (opt mode).

        One memory-dict probe serves both the residency check of the
        benefit push and the hit test; counters, heap pushes and the
        returned tier match the two separate calls exactly.  Callers
        guarantee ``weight > 0``.
        """
        policy = self.policy
        freq = policy._frequency.get(key, 0) + 1
        policy._frequency[key] = freq
        policy._weight[key] = weight
        benefit = weight * freq + policy._age
        policy._benefit[key] = benefit
        resident = self._memory.get(key)
        if resident is not None:
            self._push_heap(key, benefit)
            if not resident.reserved:
                self._memory_hits += 1
                return resident.value, CacheTier.MEMORY
        resident = self._disk.get(key)
        if resident is not None:
            self._disk_hits += 1
            return resident.value, CacheTier.DISK
        self._misses += 1
        return None

    def probe_batch(
        self, keys: Sequence[Hashable], weights: Sequence[float]
    ) -> CacheLanes:
        """Vectorized :meth:`access_fast`: classify a key column in one sweep.

        Performs the same per-key side effects as calling
        :meth:`access_fast` on each ``(key, weight)`` pair in order —
        benefit updates, heap pushes, hit/miss counters — but hoists
        the dict and attribute lookups out of the loop and returns the
        hit/miss/ghost partition as :class:`CacheLanes` instead of one
        tuple per key.  Duplicate keys in the batch are legal; later
        occurrences observe the frequency bumps of earlier ones, as in
        the scalar sweep.  Callers guarantee ``weight > 0``.
        """
        n = len(keys)
        lanes = CacheLanes(n=n)
        mem_idx = lanes.mem_idx
        mem_values = lanes.mem_values
        disk_idx = lanes.disk_idx
        disk_values = lanes.disk_values
        ghost_idx = lanes.ghost_idx
        miss_idx = lanes.miss_idx
        policy = self.policy
        frequency = policy._frequency
        policy_weight = policy._weight
        policy_benefit = policy._benefit
        memory_get = self._memory.get
        disk_get = self._disk.get
        n_mem_hits = 0
        n_disk_hits = 0
        n_misses = 0
        for i in range(n):
            key = keys[i]
            freq = frequency.get(key, 0) + 1
            frequency[key] = freq
            weight = weights[i]
            policy_weight[key] = weight
            benefit = weight * freq + policy._age
            policy_benefit[key] = benefit
            resident = memory_get(key)
            if resident is not None:
                self._push_heap(key, benefit)
                if not resident.reserved:
                    n_mem_hits += 1
                    mem_idx.append(i)
                    mem_values.append(resident.value)
                    continue
            resident = disk_get(key)
            if resident is not None:
                n_disk_hits += 1
                disk_idx.append(i)
                disk_values.append(resident.value)
                continue
            n_misses += 1
            if key in self._memory:
                # Reserved slot, value in flight: a miss for the
                # counters (scalar semantics) but its own lane.
                ghost_idx.append(i)
            else:
                miss_idx.append(i)
        self._memory_hits += n_mem_hits
        self._disk_hits += n_disk_hits
        self._misses += n_misses
        return lanes

    # ------------------------------------------------------------------
    # Admission: condCacheInMemory (Algorithms 2 and 3)
    # ------------------------------------------------------------------
    def cond_cache_in_memory(
        self, key: Hashable, value: Any | None, size: float
    ) -> bool:
        """Decide (and perform) memory caching of ``key``.

        With ``value is None`` this is the probe form: a positive
        decision reserves the space; complete it with :meth:`fulfill`.
        Returns True when the item is (or will be) memory resident.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        if size > self.memory_bytes:
            return False
        existing = self._memory.get(key)
        if existing is not None:
            if value is not None and existing.reserved:
                self.fulfill(key, value)
            return True
        if self._mem_free() >= size:
            if self._budget is not None and not self._budget_reserve(key, size):
                return False
            self._admit(key, value, size)
            return True
        if self.uniform:
            admitted = self._admit_uniform(key, size)
        else:
            admitted = self._admit_variable(key, size)
        if admitted:
            if self._budget is not None and not self._budget_reserve(key, size):
                return False
            self._admit(key, value, size)
        return admitted

    def fulfill(self, key: Hashable, value: Any) -> None:
        """Complete a reservation made by the probe form."""
        resident = self._memory.get(key)
        if resident is None or not resident.reserved:
            raise KeyError(f"no reservation for key {key!r}")
        resident.value = value
        resident.reserved = False

    def cancel_reservation(self, key: Hashable) -> None:
        """Drop a reservation (e.g. the fetch was abandoned)."""
        resident = self._memory.get(key)
        if resident is not None and resident.reserved:
            del self._memory[key]
            self._mem_used -= resident.size
            if self._budget is not None:
                self._budget.release(self._budget_owner, resident.size)
            self._note_key_left_memory(key)

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------
    def add_to_disk(self, key: Hashable, value: Any, size: float) -> bool:
        """Insert directly into the disk tier (Algorithm 1, line 19 path).

        Returns False if a bounded disk tier cannot make room even
        after evicting lower benefit-to-size entries.
        """
        if key in self._disk:
            self._disk[key].value = value
            return True
        if self.disk_bytes is not None:
            if size > self.disk_bytes:
                return False
            if not self._make_disk_room(size, newcomer=key):
                return False
        self._disk[key] = _Resident(value=value, size=size)
        self._disk_used += size
        return True

    # ------------------------------------------------------------------
    # Invalidation (Section 4.2.3)
    # ------------------------------------------------------------------
    def invalidate(self, key: Hashable) -> bool:
        """Drop ``key`` from every tier (data-store update).

        Returns True if the key was present anywhere.  The benefit
        history is forgotten *without* aging — an invalidation is not
        an eviction decision.
        """
        found = False
        resident = self._memory.pop(key, None)
        if resident is not None:
            self._mem_used -= resident.size
            if self._budget is not None:
                self._budget.release(self._budget_owner, resident.size)
            self._note_key_left_memory(key)
            found = True
        resident = self._disk.pop(key, None)
        if resident is not None:
            self._disk_used -= resident.size
            found = True
        if found:
            self.policy.forget(key)
        return found

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def memory_used(self) -> float:
        """Bytes currently committed in the memory tier."""
        return self._mem_used

    @property
    def disk_used(self) -> float:
        """Bytes currently stored in the disk tier."""
        return self._disk_used

    @property
    def memory_keys(self) -> set[Hashable]:
        """Keys resident (or reserved) in memory."""
        return set(self._memory)

    @property
    def disk_keys(self) -> set[Hashable]:
        """Keys resident on disk."""
        return set(self._disk)

    def stats(self) -> CacheStats:
        """Counter snapshot."""
        return CacheStats(
            memory_hits=self._memory_hits,
            disk_hits=self._disk_hits,
            misses=self._misses,
            mem_to_disk_evictions=self._mem_to_disk,
            disk_evictions=self._disk_evictions,
            promotions=self._promotions,
        )

    # ------------------------------------------------------------------
    # Memory-budget arbitration (repro.memory)
    # ------------------------------------------------------------------
    def _budget_reserve(self, key: Hashable, size: float) -> bool:
        """Charge an admission to the node budget, spilling to fit.

        Called only when a budget is wired.  A refusal evicts
        min-benefit residents to the disk tier (each eviction releases
        its bytes) until the newcomer fits or nothing is left to spill.
        """
        budget = self._budget
        while not budget.try_reserve(self._budget_owner, size):
            entry = self._pop_valid_min(exclude={key})
            if entry is None:
                return False
            _benefit, victim = entry
            self._budget_spills += 1
            self._evict_to_disk(victim)
        return True

    def reclaim(self, need: float) -> float:
        """Budget-shrink reclaimer: spill residents until ``need`` freed.

        Registered with the node budget at construction; memory
        pressure (the ``memory_pressure`` fault kind) lands here.
        """
        freed = 0.0
        while freed < need:
            entry = self._pop_valid_min()
            if entry is None:
                break
            _benefit, victim = entry
            freed += self._memory[victim].size
            self._budget_spills += 1
            self._evict_to_disk(victim)
        return freed

    @property
    def budget_spills(self) -> int:
        """Memory-tier evictions forced by the budget arbiter."""
        return self._budget_spills

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _mem_free(self) -> float:
        return self.memory_bytes - self._mem_used

    def _push_heap(self, key: Hashable, benefit: float) -> None:
        heapq.heappush(self._mem_heap, (benefit, self._seq, key))
        self._seq += 1
        if self._compact_enabled:
            entries = self._heap_entries
            entries[key] = entries.get(key, 0) + 1

    def _note_pop(self, key: Hashable) -> None:
        """Account for one heap entry removed by ``heappop``."""
        if not self._compact_enabled:
            return
        entries = self._heap_entries
        n = entries.get(key, 0)
        if n <= 1:
            entries.pop(key, None)
        else:
            entries[key] = n - 1
        if key not in self._memory and self._heap_dead > 0:
            self._heap_dead -= 1

    def _note_key_left_memory(self, key: Hashable) -> None:
        """A key left the memory tier: its heap entries are now dead."""
        if not self._compact_enabled:
            return
        self._heap_dead += self._heap_entries.get(key, 0)
        if (
            self._heap_dead > _COMPACT_MIN_DEAD
            and self._heap_dead * 2 > len(self._mem_heap)
        ):
            self._compact_heap()

    def _compact_heap(self) -> None:
        """Rebuild the heap without dead entries (order preserving).

        Keeps every entry whose key is memory resident — including
        stale duplicates, whose refresh-re-push behaviour is part of
        the eviction order — as its exact ``(benefit, seq, key)``
        tuple, so subsequent pops return the same sequence the lazy
        reference path would.
        """
        memory = self._memory
        live = [entry for entry in self._mem_heap if entry[2] in memory]
        heapq.heapify(live)
        self._mem_heap = live
        self._heap_entries = {
            key: n for key, n in self._heap_entries.items() if key in memory
        }
        self._heap_dead = 0

    def _admit(self, key: Hashable, value: Any | None, size: float) -> None:
        was_on_disk = key in self._disk
        if self._compact_enabled:
            # Entries left over from an earlier residency are no
            # longer dead: the key is resident again.
            self._heap_dead -= min(
                self._heap_dead, self._heap_entries.get(key, 0)
            )
        self._memory[key] = _Resident(
            value=value, size=size, reserved=value is None
        )
        self._mem_used += size
        self._push_heap(key, self.policy.benefit(key))
        if was_on_disk:
            self._promotions += 1
            if self.drop_promoted_from_disk:
                dropped = self._disk.pop(key)
                self._disk_used -= dropped.size

    def _pop_valid_min(
        self, exclude: set[Hashable] | None = None
    ) -> tuple[float, Hashable] | None:
        """Pop the memory resident with the smallest current benefit.

        The heap is lazy: entries whose recorded benefit is stale (the
        key was accessed again, evicted, or invalidated) are discarded
        or refreshed on the way out.  ``exclude`` skips keys already
        collected by the caller — duplicate heap entries for one key
        are legal (each benefit update pushes a new entry).
        """
        while self._mem_heap:
            benefit, _seq, key = heapq.heappop(self._mem_heap)
            self._note_pop(key)
            if exclude is not None and key in exclude:
                continue
            resident = self._memory.get(key)
            if resident is None:
                continue
            current = self.policy.benefit(key)
            if current != benefit:
                self._push_heap(key, current)
                continue
            return benefit, key
        return None

    def _admit_uniform(self, key: Hashable, size: float) -> bool:
        """Algorithm 2: displace the single min-benefit resident."""
        entry = self._pop_valid_min(exclude={key})
        if entry is None:
            return False
        min_benefit, victim = entry
        if self.policy.benefit(key) > min_benefit:
            self._evict_to_disk(victim)
            return self._mem_free() >= size
        self._push_heap(victim, min_benefit)
        return False

    def _admit_variable(self, key: Hashable, size: float) -> bool:
        """Algorithm 3: displace a least-benefit set, keep what fits."""
        prelim: list[tuple[float, Hashable]] = []
        collected: set[Hashable] = {key}
        freed = self._mem_free()
        while freed < size:
            entry = self._pop_valid_min(exclude=collected)
            if entry is None:
                break
            benefit, victim = entry
            prelim.append((benefit, victim))
            collected.add(victim)
            freed += self._memory[victim].size
        if freed < size:
            for benefit, victim in prelim:
                self._push_heap(victim, benefit)
            return False
        prelim_benefit = sum(benefit for benefit, _ in prelim)
        if self.policy.benefit(key) < prelim_benefit:
            for benefit, victim in prelim:
                self._push_heap(victim, benefit)
            return False
        # Keep the highest-benefit prelim members that still fit after
        # the newcomer is placed (paper: "pick items with the most
        # benefit that can be retained").
        spare = freed - size
        keep: list[tuple[float, Hashable]] = []
        for benefit, victim in sorted(prelim, key=lambda e: -e[0]):
            victim_size = self._memory[victim].size
            if victim_size <= spare:
                keep.append((benefit, victim))
                spare -= victim_size
        kept = {victim for _, victim in keep}
        for benefit, victim in prelim:
            if victim in kept:
                self._push_heap(victim, benefit)
            else:
                self._evict_to_disk(victim)
        return True

    def _evict_to_disk(self, key: Hashable) -> None:
        resident = self._memory.pop(key)
        self._mem_used -= resident.size
        if self._budget is not None:
            self._budget.release(self._budget_owner, resident.size)
        self._note_key_left_memory(key)
        self._mem_to_disk += 1
        self.policy.on_evict(key)
        if resident.reserved:
            # A reservation has no value to spill; just release it.
            return
        if key not in self._disk:
            if self.disk_bytes is not None and not self._make_disk_room(
                resident.size, newcomer=key
            ):
                self._disk_evictions += 1
                return
            self._disk[key] = _Resident(value=resident.value, size=resident.size)
            self._disk_used += resident.size

    def _make_disk_room(self, size: float, newcomer: Hashable) -> bool:
        """Evict low benefit-per-byte disk entries until ``size`` fits."""
        assert self.disk_bytes is not None
        if self._disk_used + size <= self.disk_bytes:
            return True
        ranked = sorted(
            self._disk.items(),
            key=lambda item: self.policy.benefit(item[0]) / max(item[1].size, 1e-12),
        )
        for key, resident in ranked:
            if self._disk_used + size <= self.disk_bytes:
                break
            if key == newcomer:
                continue
            del self._disk[key]
            self._disk_used -= resident.size
            self._disk_evictions += 1
        return self._disk_used + size <= self.disk_bytes
