"""Weighted LFU-DA benefit policy (Arlitt et al. [1], Appendix B).

LFU with Dynamic Aging assigns each item the benefit

    K_i = weight_i * F_i + L

where ``F_i`` is the item's access count, ``weight_i`` is an optional
per-item weight (the paper weights by value: we expose it so callers
can weight by per-access cost savings), and ``L`` is a global *age*
that is raised to the benefit of the last evicted item.  The aging term
prevents formerly hot items from squatting in the cache forever: new
items enter with at least the benefit of the most recent victim, so a
burst of fresh accesses can displace stale heavyweights — exactly the
"recent and frequent accesses are assigned more benefit" behaviour the
paper relies on for shifting heavy hitters in streams.
"""

from __future__ import annotations

from typing import Hashable


class LFUDAPolicy:
    """Tracks per-key LFU-DA benefits.

    Examples
    --------
    >>> policy = LFUDAPolicy()
    >>> policy.on_access("a")
    1.0
    >>> policy.on_access("a")
    2.0
    >>> policy.on_evict("a")      # raises the global age to a's benefit
    >>> policy.on_access("b")     # newcomer starts above the old victim
    3.0
    """

    def __init__(self) -> None:
        self._age = 0.0
        self._frequency: dict[Hashable, int] = {}
        self._weight: dict[Hashable, float] = {}
        self._benefit: dict[Hashable, float] = {}

    @property
    def age(self) -> float:
        """Current dynamic-aging floor ``L``."""
        return self._age

    def on_access(self, key: Hashable, weight: float = 1.0) -> float:
        """Record one access; returns the updated benefit.

        ``weight`` replaces the item's weight (it is a smoothed,
        per-item property, not accumulated per access).
        """
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight!r}")
        freq = self._frequency.get(key, 0) + 1
        self._frequency[key] = freq
        self._weight[key] = weight
        benefit = weight * freq + self._age
        self._benefit[key] = benefit
        return benefit

    def benefit(self, key: Hashable) -> float:
        """Current benefit of ``key`` (0 if never accessed)."""
        return self._benefit.get(key, 0.0)

    def on_evict(self, key: Hashable) -> None:
        """Raise the global age to the victim's benefit (LFU-DA rule).

        The victim's frequency history is dropped: if it returns it is
        treated as fresh, but thanks to the raised age it will not be
        penalized against incumbents.
        """
        benefit = self._benefit.pop(key, 0.0)
        self._frequency.pop(key, None)
        self._weight.pop(key, None)
        if benefit > self._age:
            self._age = benefit

    def forget(self, key: Hashable) -> None:
        """Drop a key without aging (e.g. invalidation on update)."""
        self._benefit.pop(key, None)
        self._frequency.pop(key, None)
        self._weight.pop(key, None)

    @property
    def tracked(self) -> int:
        """Number of keys with a recorded benefit."""
        return len(self._benefit)
