"""Real, in-memory MapReduce execution (correctness path).

Runs a :class:`~repro.mapreduce.api.MapReduceSpec` over actual data and
returns actual results — no timing.  Used by correctness tests, the
examples, and as the reference implementation the simulated engine's
dataflow is checked against.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Hashable, Iterable

from repro.mapreduce.api import MapReduceSpec


class LocalMapReduce:
    """Single-process reference executor.

    Examples
    --------
    >>> spec = MapReduceSpec(
    ...     map_fn=lambda k, text: [(w, 1) for w in text.split()],
    ...     reduce_fn=lambda w, counts: [(w, sum(counts))],
    ... )
    >>> engine = LocalMapReduce(n_reducers=2)
    >>> sorted(engine.run(spec, [(0, "a b a")]))
    [('a', 2), ('b', 1)]
    """

    def __init__(self, n_reducers: int = 4) -> None:
        if n_reducers < 1:
            raise ValueError("n_reducers must be >= 1")
        self.n_reducers = n_reducers
        self._last_partition_sizes: list[int] = []

    @property
    def last_partition_sizes(self) -> list[int]:
        """Records routed to each reducer in the most recent run."""
        return list(self._last_partition_sizes)

    def run(
        self, spec: MapReduceSpec, inputs: Iterable[tuple[Any, Any]]
    ) -> list[Any]:
        """Execute the job and return the concatenated reducer outputs."""
        # Map phase — with the preMap extension, a prefetch runner
        # stays a window ahead of the map body (Appendix D.2).
        intermediate: list[tuple[Hashable, Any]] = []
        if spec.prefetching:
            from repro.engine.prefetch import PreMapRunner

            assert spec.pre_map is not None and spec.bulk_fetch is not None
            runner = PreMapRunner(
                pre_map=lambda record: spec.pre_map(record[0], record[1]),
                bulk_fetch=spec.bulk_fetch,
                map_fn=lambda record, values: list(
                    spec.map_fn(record[0], record[1], values)
                ),
                window=spec.prefetch_window,
            )
            for pairs in runner.run(inputs):
                intermediate.extend(pairs)
        else:
            for key, value in inputs:
                intermediate.extend(spec.map_fn(key, value))
        # Shuffle: group by key within each partition.
        partitions: list[dict[Hashable, list[Any]]] = [
            defaultdict(list) for _ in range(self.n_reducers)
        ]
        for key, value in intermediate:
            partitions[spec.route(key, self.n_reducers)][key].append(value)
        if spec.combiner is not None:
            for part in partitions:
                for key in part:
                    part[key] = spec.combiner(key, part[key])
        self._last_partition_sizes = [
            sum(len(vs) for vs in part.values()) for part in partitions
        ]
        # Reduce phase.
        outputs: list[Any] = []
        for part in partitions:
            for key in sorted(part, key=repr):
                outputs.extend(spec.reduce_fn(key, part[key]))
        return outputs
