"""Hadoop MapReduce analog and reduce-side skew-mitigation baselines.

Figure 5 compares the paper's framework against reduce-side joins run
as MapReduce jobs: naive Hadoop (hash partitioning), CSAW [12]
(frequency x cost aware partitioning/replication) and FlowJoinLB [23]
(heavy-hitter replication from exact statistics — a lower bound on
FlowJoin, which samples).  This package provides:

* :class:`LocalMapReduce` — a real, in-memory map/shuffle/reduce
  executor used for correctness tests and examples,
* :class:`SimulatedMapReduce` — the same dataflow executed against the
  cluster simulator with per-record costs, producing the makespans of
  the Figure 5 bars (stragglers emerge naturally from skewed
  partitions),
* :mod:`repro.mapreduce.skew_partitioners` — the CSAW and FlowJoinLB
  partitioners.
"""

from repro.mapreduce.api import MapReduceSpec, Partitioner, hash_partition
from repro.mapreduce.local import LocalMapReduce
from repro.mapreduce.engine import ReduceSideJoinJob, ReduceSideCosts
from repro.mapreduce.simulated import (
    MapReduceCosts,
    SimulatedMapReduce,
    SimulatedMapReduceResult,
)
from repro.mapreduce.skew_partitioners import (
    CSAWPartitioner,
    FlowJoinLBPartitioner,
    KeyStatistics,
)

__all__ = [
    "MapReduceSpec",
    "Partitioner",
    "hash_partition",
    "LocalMapReduce",
    "ReduceSideJoinJob",
    "ReduceSideCosts",
    "MapReduceCosts",
    "SimulatedMapReduce",
    "SimulatedMapReduceResult",
    "CSAWPartitioner",
    "FlowJoinLBPartitioner",
    "KeyStatistics",
]
