"""Generic simulated MapReduce execution over the cluster model.

:class:`SimulatedMapReduce` runs any :class:`~repro.mapreduce.api.MapReduceSpec`
*logically* (producing the real outputs, via the same dataflow as
:class:`~repro.mapreduce.local.LocalMapReduce`) while charging its
phases to the simulated cluster:

* map: per-record CPU at the mapper's node,
* shuffle: per (mapper node, reducer) transfer of the emitted bytes,
  behind Hadoop's sort barrier,
* reduce: per-group setup cost (e.g. loading a stored model) plus
  per-record CPU at the reducer's node.

Costs are supplied as callables so any job — word count, annotation,
CloudBurst — can be timed without engine changes.  Stragglers emerge
naturally from skewed partitions, exactly like the Figure 5 baselines.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable

from repro.mapreduce.api import MapReduceSpec
from repro.obs.tracer import NO_TRACER, Span, Tracer
from repro.runtime.transport import ShuffleChannel
from repro.sim.cluster import Cluster


@dataclass(frozen=True)
class MapReduceCosts:
    """Cost callables for one simulated run (all default to cheap)."""

    map_cpu: Callable[[Any, Any], float] = lambda key, value: 1e-5
    record_bytes: Callable[[Hashable, Any], float] = lambda key, value: 64.0
    reduce_setup: Callable[[Hashable], tuple[float, float]] = lambda key: (0.0, 0.0)
    """Per key group at a reducer: ``(disk_bytes, cpu_seconds)``."""
    reduce_cpu: Callable[[Hashable, Any], float] = lambda key, value: 1e-5


@dataclass(frozen=True)
class SimulatedMapReduceResult:
    """Real outputs plus the timing of the simulated execution."""

    outputs: list[Any]
    makespan: float
    map_finish: float
    shuffle_finish: float
    bytes_shuffled: float
    reducer_finish_times: list[float] = field(repr=False, default_factory=list)
    shuffle_retransmits: int = 0
    shuffle_duplicates: int = 0

    @property
    def straggler_ratio(self) -> float:
        """Slowest reducer over the mean — the skew signature."""
        busy = [t for t in self.reducer_finish_times if t > 0]
        if not busy:
            return 1.0
        return max(busy) / (sum(busy) / len(busy))


class SimulatedMapReduce:
    """Execute a MapReduce spec with real outputs and simulated timing."""

    def __init__(
        self,
        cluster: Cluster,
        costs: MapReduceCosts | None = None,
        reducers_per_node: int = 1,
        shuffle: ShuffleChannel | None = None,
        tracer: Tracer = NO_TRACER,
    ) -> None:
        if reducers_per_node < 1:
            raise ValueError("reducers_per_node must be >= 1")
        self.cluster = cluster
        self.costs = costs if costs is not None else MapReduceCosts()
        self.n_reducers = reducers_per_node * len(cluster)
        self.tracer = tracer
        # Shuffle traffic goes through the runtime kernel's
        # at-least-once channel, so an installed fault schedule
        # (`Network.delivery_plan`) perturbs this engine too.
        self.shuffle = shuffle if shuffle is not None else ShuffleChannel(cluster)

    def run(
        self,
        spec: MapReduceSpec,
        inputs: Iterable[tuple[Any, Any]],
        span_parent: Span | None = None,
    ) -> SimulatedMapReduceResult:
        """Run the job; returns outputs and timing.

        ``span_parent`` nests the per-phase spans (map / shuffle /
        reduce) under the caller's job span.
        """
        cluster = self.cluster
        costs = self.costs
        n_nodes = len(cluster)

        # ------------------------------------------------------------
        # Map phase: records round-robin across nodes.
        # ------------------------------------------------------------
        map_finish_per_node = [0.0] * n_nodes
        emitted: dict[tuple[int, int], list[tuple[Hashable, Any]]] = defaultdict(list)
        for index, (key, value) in enumerate(inputs):
            node = index % n_nodes
            _s, finish = cluster.node(node).cpu.acquire(
                0.0, costs.map_cpu(key, value)
            )
            map_finish_per_node[node] = max(map_finish_per_node[node], finish)
            for out_key, out_value in spec.map_fn(key, value):
                reducer = spec.route(out_key, self.n_reducers)
                emitted[(node, reducer)].append((out_key, out_value))
        map_finish = max(map_finish_per_node, default=0.0)
        if self.tracer.enabled:
            phase = self.tracer.start(
                "map_phase", parent=span_parent, at=0.0, nodes=n_nodes
            )
            self.tracer.end(phase, at=map_finish)

        # ------------------------------------------------------------
        # Shuffle with the sort barrier.
        # ------------------------------------------------------------
        shuffle_span: Span | None = None
        if self.tracer.enabled:
            shuffle_span = self.tracer.start(
                "shuffle_phase", parent=span_parent, at=map_finish
            )
        arrival = [map_finish] * self.n_reducers
        bytes_shuffled = 0.0
        for (map_node, reducer), records in sorted(
            emitted.items(), key=lambda kv: kv[0]
        ):
            reduce_node = reducer % n_nodes
            size = sum(costs.record_bytes(k, v) for k, v in records)
            outcome = self.shuffle.transfer(
                map_finish_per_node[map_node], map_node, reduce_node, size,
                span_parent=shuffle_span,
            )
            if map_node != reduce_node:
                bytes_shuffled += size
            arrival[reducer] = max(arrival[reducer], outcome.arrive)
        shuffle_finish = max(arrival, default=map_finish)
        if shuffle_span is not None:
            self.tracer.end(
                shuffle_span, at=shuffle_finish, bytes=bytes_shuffled
            )

        # ------------------------------------------------------------
        # Reduce: group, charge setup + per-record CPU, produce output.
        # ------------------------------------------------------------
        groups: dict[int, dict[Hashable, list[Any]]] = defaultdict(
            lambda: defaultdict(list)
        )
        for (_map_node, reducer), records in emitted.items():
            for key, value in records:
                groups[reducer][key].append(value)

        outputs: list[Any] = []
        reducer_finish = [0.0] * self.n_reducers
        for reducer in range(self.n_reducers):
            partition = groups.get(reducer)
            if not partition:
                continue
            node = cluster.node(reducer % n_nodes)
            start = arrival[reducer]
            finish = start
            for key in sorted(partition, key=repr):
                values = partition[key]
                if spec.combiner is not None:
                    values = spec.combiner(key, values)
                disk_bytes, setup_cpu = costs.reduce_setup(key)
                _d, disk_done = node.disk.acquire(
                    start, node.spec.disk_time(disk_bytes) if disk_bytes else 0.0
                )
                cpu_time = setup_cpu + sum(
                    costs.reduce_cpu(key, v) for v in values
                )
                _c, cpu_done = node.cpu.acquire(disk_done, cpu_time)
                finish = max(finish, cpu_done)
                outputs.extend(spec.reduce_fn(key, values))
            reducer_finish[reducer] = finish

        makespan = max([map_finish, shuffle_finish] + reducer_finish)
        if self.tracer.enabled:
            phase = self.tracer.start(
                "reduce_phase", parent=span_parent, at=shuffle_finish,
                reducers=self.n_reducers,
            )
            self.tracer.end(phase, at=makespan)
        return SimulatedMapReduceResult(
            outputs=outputs,
            makespan=makespan,
            map_finish=map_finish,
            shuffle_finish=shuffle_finish,
            bytes_shuffled=bytes_shuffled,
            reducer_finish_times=reducer_finish,
            shuffle_retransmits=self.shuffle.retransmits,
            shuffle_duplicates=self.shuffle.duplicates,
        )
