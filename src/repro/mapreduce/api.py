"""MapReduce programming interface (Hadoop analog).

A job is three callables plus a partitioner, mirroring the Hadoop API
the paper extends:

* ``map_fn(key, value) -> iterable of (k2, v2)``
* ``reduce_fn(k2, values) -> iterable of outputs``
* ``partition(key, n_reducers) -> reducer index`` (or a
  :class:`Partitioner` object with that method — the hook the CSAW and
  FlowJoinLB baselines replace)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Protocol, runtime_checkable

from repro.store.partitioner import stable_hash


@runtime_checkable
class Partitioner(Protocol):
    """Routes intermediate keys to reducers."""

    def partition(self, key: Hashable, n_reducers: int) -> int:
        """Reducer index in ``[0, n_reducers)`` for ``key``."""
        ...


class HashPartitioner:
    """Hadoop's default: stable hash modulo reducer count."""

    def partition(self, key: Hashable, n_reducers: int) -> int:
        return stable_hash(key) % n_reducers


def hash_partition(key: Hashable, n_reducers: int) -> int:
    """Convenience function form of the default partitioner."""
    return stable_hash(key) % n_reducers


@dataclass(frozen=True)
class MapReduceSpec:
    """A complete MapReduce job description.

    With the paper's ``preMap`` extension (Appendix D.2), ``pre_map``
    names the data-store keys one input record needs and
    ``bulk_fetch`` resolves a window of them in a single batched call;
    the executor then hands ``map_fn`` a third argument — the fetched
    ``{key: value}`` mapping — so map bodies never block per lookup.

    Examples
    --------
    >>> spec = MapReduceSpec(
    ...     map_fn=lambda k, v: [(w, 1) for w in v.split()],
    ...     reduce_fn=lambda k, vs: [(k, sum(vs))],
    ... )
    >>> spec.route("word", 4) in range(4)
    True
    """

    map_fn: Callable[..., Iterable[tuple[Hashable, Any]]]
    reduce_fn: Callable[[Hashable, list[Any]], Iterable[Any]]
    partitioner: Partitioner | None = None
    combiner: Callable[[Hashable, list[Any]], list[Any]] | None = None
    pre_map: Callable[[Any, Any], Iterable[Hashable]] | None = None
    bulk_fetch: Callable[[list[Hashable]], dict[Hashable, Any]] | None = None
    prefetch_window: int = 64

    def __post_init__(self) -> None:
        if (self.pre_map is None) != (self.bulk_fetch is None):
            raise ValueError("pre_map and bulk_fetch must be supplied together")
        if self.prefetch_window < 1:
            raise ValueError("prefetch_window must be >= 1")

    @property
    def prefetching(self) -> bool:
        """Whether this job uses the preMap extension."""
        return self.pre_map is not None

    def route(self, key: Hashable, n_reducers: int) -> int:
        """Reducer index for ``key`` under this job's partitioner."""
        if self.partitioner is not None:
            return self.partitioner.partition(key, n_reducers)
        return hash_partition(key, n_reducers)
