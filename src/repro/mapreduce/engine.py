"""Simulated reduce-side join execution (the Figure 5 baselines).

Models the entity-annotation MapReduce job of Section 2.1 on the
cluster simulator:

1. **Map** — documents are processed round-robin across all nodes;
   each spot costs a little CPU to extract and emits a
   ``(token, context)`` pair.
2. **Shuffle** — pairs travel from their map node to the reducer
   chosen by the partitioner (hash / CSAW / FlowJoinLB).  Hadoop's
   sort barrier applies: reducers start after all map output arrives.
3. **Reduce** — for every distinct token routed to a reducer, the
   stored model is loaded from local disk once (models are partitioned
   amongst reducers; replicated tokens load wherever they land), then
   every pair pays the token's classification CPU cost.

Stragglers under skew emerge naturally: a reducer that receives a
heavy-hitter token (or expensive models) finishes late and stretches
the makespan, which is precisely the effect CSAW/FlowJoinLB mitigate
and the paper's framework side-steps.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.mapreduce.api import Partitioner, hash_partition
from repro.runtime.transport import ShuffleChannel
from repro.sim.cluster import Cluster


@dataclass(frozen=True)
class ReduceSideCosts:
    """Per-record cost parameters of the simulated job."""

    map_cpu_per_spot: float = 0.0002
    context_bytes: float = 512.0
    output_bytes: float = 64.0

    def __post_init__(self) -> None:
        if self.map_cpu_per_spot < 0 or self.context_bytes < 0 or self.output_bytes < 0:
            raise ValueError("costs must be non-negative")


@dataclass(frozen=True)
class ReduceSideResult:
    """Outcome of one simulated reduce-side run."""

    makespan: float
    map_finish: float
    shuffle_finish: float
    n_pairs: int
    bytes_shuffled: float
    reducer_finish_times: list[float]
    shuffle_retransmits: int = 0
    shuffle_duplicates: int = 0

    @property
    def straggler_ratio(self) -> float:
        """Slowest reducer finish over the mean — the skew signature."""
        if not self.reducer_finish_times:
            return 1.0
        mean = sum(self.reducer_finish_times) / len(self.reducer_finish_times)
        if mean == 0:
            return 1.0
        return max(self.reducer_finish_times) / mean


class ReduceSideJoinJob:
    """One reduce-side join (annotation-style) on the simulated cluster.

    Parameters
    ----------
    cluster:
        The simulated hardware; every node maps and reduces (the
        paper's baselines use all 20 nodes).
    model_sizes, model_costs:
        Stored model size (bytes) and per-tuple classification cost
        (seconds) for each join key.
    partitioner:
        Object with ``partition(key, n_reducers)``; if it also exposes
        ``is_replicated(key)``, replicated keys pay a model load on
        every reducer they reach (CSAW / FlowJoinLB replication).
    costs:
        Map/shuffle cost parameters.
    reducers_per_node:
        Reduce task slots per node.
    """

    def __init__(
        self,
        cluster: Cluster,
        model_sizes: dict[Hashable, float],
        model_costs: dict[Hashable, float],
        partitioner: Partitioner | None = None,
        costs: ReduceSideCosts | None = None,
        reducers_per_node: int = 1,
        model_hydration: dict[Hashable, float] | None = None,
        shuffle: ShuffleChannel | None = None,
    ) -> None:
        if reducers_per_node < 1:
            raise ValueError("reducers_per_node must be >= 1")
        self.cluster = cluster
        self.model_sizes = model_sizes
        self.model_costs = model_costs
        # A reducer deserializes each model once per key group it owns
        # and then reuses the live object for the whole group.
        self.model_hydration = dict(model_hydration or {})
        self.partitioner = partitioner
        self.costs = costs if costs is not None else ReduceSideCosts()
        self.n_reducers = reducers_per_node * len(cluster)
        # Shuffle traffic rides the runtime kernel's at-least-once
        # channel so installed fault schedules perturb this engine too.
        self.shuffle = shuffle if shuffle is not None else ShuffleChannel(cluster)

    def route(self, key: Hashable) -> int:
        if self.partitioner is not None:
            return self.partitioner.partition(key, self.n_reducers)
        return hash_partition(key, self.n_reducers)

    def run(self, documents: Sequence[Sequence[Hashable]]) -> ReduceSideResult:
        """Execute the job over ``documents`` (each a list of spot keys)."""
        cluster = self.cluster
        n_nodes = len(cluster)
        costs = self.costs

        # ------------------------------------------------------------
        # Map phase: documents round-robin across nodes.
        # ------------------------------------------------------------
        map_finish_per_node = [0.0] * n_nodes
        # pairs_out[(map_node, reducer)] -> list of keys
        pairs_out: dict[tuple[int, int], list[Hashable]] = defaultdict(list)
        n_pairs = 0
        for doc_index, spots in enumerate(documents):
            node = doc_index % n_nodes
            cpu_time = costs.map_cpu_per_spot * len(spots)
            _s, finish = cluster.node(node).cpu.acquire(0.0, cpu_time)
            map_finish_per_node[node] = max(map_finish_per_node[node], finish)
            for key in spots:
                pairs_out[(node, self.route(key))].append(key)
                n_pairs += 1
        map_finish = max(map_finish_per_node) if documents else 0.0

        # ------------------------------------------------------------
        # Shuffle: one transfer per (map node, reducer) cell; local
        # cells are free.  Hadoop's barrier: reduce waits for all input.
        # ------------------------------------------------------------
        arrival_per_reducer = [map_finish] * self.n_reducers
        bytes_shuffled = 0.0
        for (map_node, reducer), keys in sorted(
            pairs_out.items(), key=lambda kv: (kv[0][0], kv[0][1])
        ):
            reduce_node = reducer % n_nodes
            size = len(keys) * costs.context_bytes
            outcome = self.shuffle.transfer(
                map_finish_per_node[map_node], map_node, reduce_node, size
            )
            if map_node != reduce_node:
                bytes_shuffled += size
            arrival_per_reducer[reducer] = max(
                arrival_per_reducer[reducer], outcome.arrive
            )
        shuffle_finish = max(arrival_per_reducer) if pairs_out else map_finish

        # ------------------------------------------------------------
        # Reduce: per reducer, model loads (disk) + classification (CPU).
        # ------------------------------------------------------------
        reducer_inputs: dict[int, dict[Hashable, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        for (_map_node, reducer), keys in pairs_out.items():
            for key in keys:
                reducer_inputs[reducer][key] += 1

        reducer_finish = [0.0] * self.n_reducers
        for reducer in range(self.n_reducers):
            groups = reducer_inputs.get(reducer)
            if not groups:
                reducer_finish[reducer] = arrival_per_reducer[reducer]
                continue
            node = cluster.node(reducer % n_nodes)
            start = arrival_per_reducer[reducer]
            finish = start
            for key, count in groups.items():
                size = self.model_sizes.get(key, 0.0)
                _ds, disk_done = node.disk.acquire(start, node.spec.disk_time(size))
                cpu_time = (
                    self.model_hydration.get(key, 0.0)
                    + count * self.model_costs.get(key, 0.0)
                )
                _cs, cpu_done = node.cpu.acquire(disk_done, cpu_time)
                finish = max(finish, cpu_done)
            reducer_finish[reducer] = finish

        makespan = max(
            [map_finish, shuffle_finish] + reducer_finish
        )
        return ReduceSideResult(
            makespan=makespan,
            map_finish=map_finish,
            shuffle_finish=shuffle_finish,
            n_pairs=n_pairs,
            bytes_shuffled=bytes_shuffled,
            reducer_finish_times=reducer_finish,
            shuffle_retransmits=self.shuffle.retransmits,
            shuffle_duplicates=self.shuffle.duplicates,
        )
