"""CSAW [12] and FlowJoinLB [23] reduce-side skew mitigation.

Both baselines precompute statistics over the whole input (the paper
grants them this for free — "we precompute statistics and cost
estimates ahead of time ... and do not include the time taken") and
then choose, per key, between

* **replication** — the key's stored model is copied to every reducer
  and its tuples are routed randomly (spreading a heavy hitter), or
* **placement** — all the key's tuples go to one reducer.

They differ in the signal:

* **FlowJoinLB** uses *frequency only*: keys whose tuple count exceeds
  ``threshold x (total / n_reducers)`` are heavy hitters (the
  DeWitt et al. broadcast/hash scheme with exact counts — a lower
  bound on FlowJoin's sampled histograms).  Light keys hash.
* **CSAW** uses *frequency x per-tuple UDF cost* (entity-annotation
  models differ wildly in classification cost), replicating keys whose
  total work exceeds the same fraction of total work, and assigns the
  remaining keys to reducers by greedy least-loaded bin packing of
  their work — strictly stronger than hashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from repro.store.partitioner import stable_hash


@dataclass(frozen=True)
class KeyStatistics:
    """Precomputed per-key statistics for the baselines."""

    frequencies: dict[Hashable, int]
    costs: dict[Hashable, float] = field(default_factory=dict)

    @classmethod
    def from_stream(
        cls, keys: list[Hashable], costs: dict[Hashable, float] | None = None
    ) -> "KeyStatistics":
        """Count exact frequencies over the full input stream."""
        frequencies: dict[Hashable, int] = {}
        for key in keys:
            frequencies[key] = frequencies.get(key, 0) + 1
        return cls(frequencies=frequencies, costs=dict(costs or {}))

    def work(self, key: Hashable) -> float:
        """Total UDF work for a key: frequency x per-tuple cost."""
        return self.frequencies.get(key, 0) * self.costs.get(key, 1.0)

    @property
    def total_tuples(self) -> int:
        return sum(self.frequencies.values())

    @property
    def total_work(self) -> float:
        return sum(self.work(k) for k in self.frequencies)


class FlowJoinLBPartitioner:
    """Frequency-threshold heavy-hitter replication (lower-bound FlowJoin).

    Parameters
    ----------
    stats:
        Exact key frequencies for the whole input.
    n_reducers:
        Number of reduce partitions.
    threshold:
        A key is heavy when its frequency exceeds
        ``threshold * total / n_reducers`` — the "somewhat arbitrary
        threshold" the paper contrasts ski-rental against.
    seed:
        Seed for the random routing of replicated keys.
    """

    def __init__(
        self,
        stats: KeyStatistics,
        n_reducers: int,
        threshold: float = 0.5,
        seed: int = 0,
    ) -> None:
        if n_reducers < 1:
            raise ValueError("n_reducers must be >= 1")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.n_reducers = n_reducers
        self._rng = np.random.default_rng(seed)
        cutoff = threshold * stats.total_tuples / n_reducers
        self.replicated: set[Hashable] = {
            key for key, freq in stats.frequencies.items() if freq > cutoff
        }

    def is_replicated(self, key: Hashable) -> bool:
        """Whether this key's model is copied to every reducer."""
        return key in self.replicated

    def partition(self, key: Hashable, n_reducers: int) -> int:
        if key in self.replicated:
            return int(self._rng.integers(0, n_reducers))
        return stable_hash(key) % n_reducers


class CSAWPartitioner:
    """Frequency x cost aware partitioning/replication (Gupta et al.).

    Heavy keys (total work above ``threshold * total_work /
    n_reducers``) are replicated and routed randomly.  Light keys are
    assigned whole to the least-loaded reducer in decreasing-work order
    (greedy makespan scheduling), which is the "partitioning performed
    accordingly" of Section 2.1.
    """

    def __init__(
        self,
        stats: KeyStatistics,
        n_reducers: int,
        threshold: float = 0.5,
        seed: int = 0,
    ) -> None:
        if n_reducers < 1:
            raise ValueError("n_reducers must be >= 1")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.n_reducers = n_reducers
        self._rng = np.random.default_rng(seed)
        cutoff = threshold * stats.total_work / n_reducers
        self.replicated: set[Hashable] = {
            key for key in stats.frequencies if stats.work(key) > cutoff
        }
        # Greedy least-loaded placement of the remaining keys.
        loads = [0.0] * n_reducers
        self._assignment: dict[Hashable, int] = {}
        light = sorted(
            (k for k in stats.frequencies if k not in self.replicated),
            key=lambda k: -stats.work(k),
        )
        for key in light:
            target = min(range(n_reducers), key=loads.__getitem__)
            self._assignment[key] = target
            loads[target] += stats.work(key)

    def is_replicated(self, key: Hashable) -> bool:
        """Whether this key's model is copied to every reducer."""
        return key in self.replicated

    def partition(self, key: Hashable, n_reducers: int) -> int:
        if key in self.replicated:
            return int(self._rng.integers(0, n_reducers))
        assigned = self._assignment.get(key)
        if assigned is not None:
            return assigned
        # Key unseen in the statistics (e.g. streamed later): hash.
        return stable_hash(key) % n_reducers
