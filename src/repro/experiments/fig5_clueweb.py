"""Figure 5 — entity annotation on Hadoop: total time per technique.

Eight bars, as in the paper:

* **Hadoop** — naive reduce-side join, hash partitioning, 20 nodes.
* **CSAW** — frequency x cost partitioning/replication [12], 20 nodes.
* **FlowJoinLB** — exact-statistics heavy-hitter replication [23],
  20 nodes.
* **NO / FC / FD / FR / FO** — the framework's strategies on the
  10 compute + 10 data node split (same total hardware).

CSAW and FlowJoinLB receive their statistics for free (the paper
precomputes them and excludes the time); our techniques use none.

Expected shape: Hadoop far worst (straggler reducers); FD poor (data
node skew); FO fastest — less than half the time of CSAW, FlowJoinLB
and FC (the paper's sentence "FO takes less than half the time of
CSAW, FlowJoinLB and FC takes 25% more time than FO" is ambiguous; we
match the first reading and record the measured FC/FO ratio in
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.job import JoinJob
from repro.engine.strategies import Strategy
from repro.mapreduce.engine import ReduceSideJoinJob
from repro.mapreduce.skew_partitioners import (
    CSAWPartitioner,
    FlowJoinLBPartitioner,
    KeyStatistics,
)
from repro.metrics.report import ExperimentTable
from repro.sim.cluster import Cluster, NodeSpec
from repro.workloads.annotation import AnnotationWorkload

#: The Figure 5 bar order.
TECHNIQUES = ("Hadoop", "CSAW", "FlowJoinLB", "NO", "FC", "FD", "FR", "FO")


@dataclass(frozen=True)
class Fig5Scale:
    """Workload volume for one run of the experiment."""

    n_tokens: int
    n_docs: int
    n_compute: int
    n_data: int

    @property
    def n_nodes(self) -> int:
        return self.n_compute + self.n_data


SCALES = {
    "smoke": Fig5Scale(n_tokens=600, n_docs=200, n_compute=3, n_data=3),
    "default": Fig5Scale(n_tokens=1500, n_docs=600, n_compute=5, n_data=5),
    "paper": Fig5Scale(n_tokens=3000, n_docs=1200, n_compute=10, n_data=10),
}


def _reduce_side_minutes(
    workload: AnnotationWorkload, scale: Fig5Scale, technique: str, seed: int
) -> float:
    """Run one reduce-side baseline on all nodes; returns minutes."""
    cluster = Cluster.homogeneous(scale.n_nodes, NodeSpec())
    spots = workload.spot_stream()
    if technique == "Hadoop":
        partitioner = None
    else:
        stats = KeyStatistics.from_stream(spots, costs=workload.model_costs)
        if technique == "CSAW":
            partitioner = CSAWPartitioner(stats, scale.n_nodes, seed=seed)
        elif technique == "FlowJoinLB":
            partitioner = FlowJoinLBPartitioner(stats, scale.n_nodes, seed=seed)
        else:
            raise ValueError(f"unknown reduce-side technique {technique!r}")
    job = ReduceSideJoinJob(
        cluster=cluster,
        model_sizes=workload.model_sizes,
        model_costs=workload.model_costs,
        partitioner=partitioner,
        model_hydration=workload.model_hydration,
    )
    return job.run(workload.documents).makespan / 60.0


def _framework_minutes(
    workload: AnnotationWorkload, scale: Fig5Scale, strategy: str, seed: int
) -> float:
    """Run one framework strategy on the split cluster; returns minutes."""
    cluster = Cluster.homogeneous(scale.n_nodes, NodeSpec())
    job = JoinJob(
        cluster=cluster,
        compute_nodes=list(range(scale.n_compute)),
        data_nodes=list(range(scale.n_compute, scale.n_nodes)),
        table=workload.build_table(),
        udf=workload.udf,
        strategy=Strategy.by_name(strategy),
        sizes=workload.sizes,
        memory_cache_bytes=100e6,
        # The scaled model store fits in the data nodes' block caches
        # (the paper's 28.7 GB over 10 x 16 GB nodes was also mostly
        # memory resident); only the big synthetic stores miss.
        block_cache_bytes=1e9,
        seed=seed,
    )
    return job.run(workload.spot_stream()).makespan / 60.0


def run(scale: str = "default", seed: int = 7) -> ExperimentTable:
    """The Figure 5 bars at the requested scale."""
    try:
        preset = SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
        ) from None
    workload = AnnotationWorkload(
        n_tokens=preset.n_tokens, n_docs=preset.n_docs, seed=seed
    )
    table = ExperimentTable(
        title=f"Figure 5 - ClueWeb entity annotation, total time ({scale})",
        columns=["technique", "minutes", "normalized_vs_FO"],
        notes=(
            f"{workload.n_spots} spots over {preset.n_tokens} models "
            f"({workload.total_model_bytes / 1e6:.0f} MB stored); "
            "reduce-side baselines use all nodes, framework strategies "
            "use the compute/data split."
        ),
    )
    minutes: dict[str, float] = {}
    for technique in TECHNIQUES:
        if technique in ("Hadoop", "CSAW", "FlowJoinLB"):
            minutes[technique] = _reduce_side_minutes(
                workload, preset, technique, seed
            )
        else:
            minutes[technique] = _framework_minutes(
                workload, preset, technique, seed
            )
    fo = minutes["FO"]
    for technique in TECHNIQUES:
        table.add_row([technique, minutes[technique], minutes[technique] / fo])
    return table


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
