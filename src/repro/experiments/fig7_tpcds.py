"""Figure 7 — TPC-DS multi-join queries: SparkSQL vs our framework.

Q3, Q7, Q27 and Q42 on the TPC-DS-lite data.  SparkSQL executes every
join as a shuffle hash join over all nodes; our framework keeps the
fact stream at the compute nodes and runs the dimension joins as
pipelined indexed lookups (ski-rental cached, load balanced) against
data nodes — no shuffle.  Both use the same (planner-chosen) join
order, as in the paper.

Expected shape: our framework faster on all four queries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.report import ExperimentTable
from repro.sim.cluster import Cluster, NodeSpec
from repro.sparklite.indexed_exec import IndexedExecutor
from repro.sparklite.planner import order_joins
from repro.sparklite.shuffle_exec import ShuffleExecutor
from repro.workloads.tpcds import TPCDSLite

QUERIES = ("Q3", "Q7", "Q27", "Q42")


@dataclass(frozen=True)
class Fig7Scale:
    """Fact-table volume and node split for one run."""

    fact_rows: int
    n_compute: int
    n_data: int

    @property
    def n_nodes(self) -> int:
        return self.n_compute + self.n_data


SCALES = {
    "smoke": Fig7Scale(fact_rows=15000, n_compute=3, n_data=3),
    "default": Fig7Scale(fact_rows=30000, n_compute=5, n_data=5),
    "paper": Fig7Scale(fact_rows=60000, n_compute=10, n_data=10),
}


def run(scale: str = "default", seed: int = 7) -> ExperimentTable:
    """The Figure 7 bars at the requested scale."""
    try:
        preset = SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
        ) from None
    data = TPCDSLite(fact_rows=preset.fact_rows, seed=seed)
    table = ExperimentTable(
        title=f"Figure 7 - TPC-DS multi-join queries on Spark ({scale})",
        columns=["query", "sparksql_seconds", "framework_seconds", "speedup"],
        notes=(
            f"store_sales has {preset.fact_rows} rows; both sides use the "
            "same left-deep join order."
        ),
    )
    for name in QUERIES:
        query = data.queries()[name]
        order = order_joins(query)
        spark_cluster = Cluster.homogeneous(preset.n_nodes, NodeSpec())
        spark = ShuffleExecutor(spark_cluster).run(query, join_order=order)
        ours_cluster = Cluster.homogeneous(preset.n_nodes, NodeSpec())
        ours = IndexedExecutor(
            ours_cluster,
            compute_nodes=list(range(preset.n_compute)),
            data_nodes=list(range(preset.n_compute, preset.n_nodes)),
            pipeline_window=max(64, preset.fact_rows // preset.n_compute // 8),
            seed=seed,
        ).run(query, join_order=order)
        table.add_row(
            [name, spark.makespan, ours.makespan, spark.makespan / ours.makespan]
        )
    return table


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
