"""Figure 8 — Hadoop synthetic workloads: normalized time vs skew.

For each workload (DH, CH, DCH) and each skew z in {0, 0.5, 1.0, 1.5},
run NO / FC / FD / FR / CO / LO / FO and report the completion time
normalized so that NO at z=0 equals 1.0 — exactly the paper's axes.

Expected shapes (paper Section 9.3.1):

* DH  — FD/LO best at z=0; FO marginally worse than FD at z=0 but far
  better at high skew; CO tracks FO; NO worst; FC beats NO.
* CH  — NO and FC overlap; FD/CO degrade with skew; FR great at z=0
  then collapses; LO/FO beat CO; FO dips slightly vs LO at z=1.5.
* DCH — FO best or tied everywhere; LO degrades with skew; CO improves
  mid-skew.
"""

from __future__ import annotations

from repro.experiments.common import SKEWS, run_synthetic_job, scale_preset
from repro.metrics.report import ExperimentTable

#: The strategies of Figure 8, in the paper's legend order.
STRATEGIES = ("NO", "FC", "FD", "FR", "CO", "LO", "FO")
WORKLOADS = ("DH", "CH", "DCH")


def run_workload(
    workload: str, scale: str = "default", seed: int = 7
) -> ExperimentTable:
    """One Figure 8 panel: ``workload`` across strategies and skews."""
    preset = scale_preset(scale)
    table = ExperimentTable(
        title=f"Figure 8 ({workload}) - normalized time vs skew ({scale})",
        columns=["strategy"] + [f"z={z}" for z in SKEWS],
        notes="Time normalized to NO at z=0 (lower is better).",
    )
    baseline: float | None = None
    for strategy in STRATEGIES:
        row: list = [strategy]
        for skew in SKEWS:
            result = run_synthetic_job(workload, strategy, skew, preset, seed)
            if baseline is None:
                baseline = result.makespan
            row.append(result.makespan / baseline)
        table.add_row(row)
    return table


def run(scale: str = "default", seed: int = 7) -> list[ExperimentTable]:
    """All three Figure 8 panels."""
    return [run_workload(w, scale=scale, seed=seed) for w in WORKLOADS]


def main() -> None:  # pragma: no cover - CLI entry
    for table in run():
        print(table.render())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
