"""Figure 11 (appendix) — Muppet synthetic workloads: throughput vs skew.

The same DH / CH / DCH workloads fed as streams through the Muppet
analog; the metric is normalized throughput (NO at z=0 = 1.0, higher is
better).  Only the streaming-applicable strategies run: NO, FC, FD,
FR, FO.

Expected shapes (Appendix E): mirrors Figure 8 inverted — FD's
throughput decays with skew while FO's grows (DH); FR beats FO at low
skew on CH but collapses at high skew; FO dips slightly at z=1.5 on CH
(cached hot keys concentrate compute at the stream nodes); FC beats NO
everywhere.
"""

from __future__ import annotations

from repro.engine.strategies import STREAMING_STRATEGIES
from repro.experiments.common import SKEWS, run_synthetic_job, scale_preset
from repro.metrics.report import ExperimentTable

WORKLOADS = ("DH", "CH", "DCH")


def run_workload(
    workload: str, scale: str = "default", seed: int = 7
) -> ExperimentTable:
    """One Figure 11 panel: normalized throughput for ``workload``."""
    preset = scale_preset(scale)
    table = ExperimentTable(
        title=f"Figure 11 ({workload}) - normalized throughput vs skew ({scale})",
        columns=["strategy"] + [f"z={z}" for z in SKEWS],
        notes="Throughput normalized to NO at z=0 (higher is better).",
    )
    baseline: float | None = None
    for strategy in STREAMING_STRATEGIES:
        row: list = [strategy]
        for skew in SKEWS:
            result = run_synthetic_job(workload, strategy, skew, preset, seed)
            if baseline is None:
                baseline = result.throughput
            row.append(result.throughput / baseline)
        table.add_row(row)
    return table


def run(scale: str = "default", seed: int = 7) -> list[ExperimentTable]:
    """All three Figure 11 panels."""
    return [run_workload(w, scale=scale, seed=seed) for w in WORKLOADS]


def main() -> None:  # pragma: no cover - CLI entry
    for table in run():
        print(table.render())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
