"""Figure 9 — adaptive vs non-adaptive optimization under drift.

The key distribution shifts 10 times during the run (the hot keys
move).  The adaptive FO keeps re-deciding; the non-adaptive variant
makes ski-rental caching decisions only during the first 10% of the
input and freezes the cache afterwards (load balancing stays on).  The
figure plots, per workload and skew, the ratio

    time(non-adaptive) / time(adaptive)

Expected shape: ~1 at z=0 for all workloads; grows with skew for DH
and DCH (stale caches are useless once the hot keys move); stays near
1 for CH (load balancing alone covers compute-heavy drift).
"""

from __future__ import annotations

from repro.experiments.common import SKEWS, run_synthetic_job, scale_preset
from repro.metrics.report import ExperimentTable

WORKLOADS = ("DH", "DCH", "CH")
#: The paper changes the frequent keys 10 times during each run.
SHIFTS = 10


def _pipeline_window(preset) -> int:
    """Map-queue depth scaled to the drift period.

    Adaptation is only observable when the pipeline's in-flight window
    is much shorter than a drift segment; the paper's streams are
    millions of tuples long so its queue is relatively tiny.  We keep
    the per-node window at ~an eighth of a segment's per-node share.
    """
    segment = preset.n_tuples // (SHIFTS + 1)
    return max(16, segment // preset.n_compute // 8)


def run(scale: str = "default", seed: int = 7) -> ExperimentTable:
    """The Figure 9 series: ratio vs skew for DH, DCH, CH."""
    preset = scale_preset(scale)
    table = ExperimentTable(
        title=f"Figure 9 - non-adaptive / adaptive time ratio ({scale})",
        columns=["workload"] + [f"z={z}" for z in SKEWS],
        notes=(
            f"Distribution shifts {SHIFTS} times per run; ratios > 1 mean "
            "the adaptive optimizer wins."
        ),
    )
    for workload in WORKLOADS:
        row: list = [workload]
        for skew in SKEWS:
            adaptive = run_synthetic_job(
                workload, "FO", skew, preset, seed, shifts=SHIFTS,
                adaptive=True, pipeline_window=_pipeline_window(preset),
            )
            frozen = run_synthetic_job(
                workload, "FO", skew, preset, seed, shifts=SHIFTS,
                adaptive=False, pipeline_window=_pipeline_window(preset),
            )
            row.append(frozen.makespan / adaptive.makespan)
        table.add_row(row)
    return table


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
