"""Shared plumbing for the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.job import JoinJob, JobResult
from repro.engine.strategies import Strategy
from repro.sim.cluster import Cluster, NodeSpec
from repro.workloads.synthetic import SyntheticWorkload


@dataclass(frozen=True)
class ScalePreset:
    """One experiment scale: cluster size and workload volume."""

    n_compute: int
    n_data: int
    n_tuples: int
    n_keys: int
    memory_cache_bytes: float

    @property
    def n_nodes(self) -> int:
        return self.n_compute + self.n_data


#: Named presets shared by the synthetic-workload experiments.  The
#: paper runs 10+10 nodes; ``smoke`` shrinks everything for tests.
SCALES: dict[str, ScalePreset] = {
    "smoke": ScalePreset(
        n_compute=3, n_data=3, n_tuples=3000, n_keys=3000,
        memory_cache_bytes=8e6,
    ),
    "default": ScalePreset(
        n_compute=5, n_data=5, n_tuples=10000, n_keys=10000,
        memory_cache_bytes=15e6,
    ),
    "paper": ScalePreset(
        n_compute=10, n_data=10, n_tuples=20000, n_keys=20000,
        memory_cache_bytes=20e6,
    ),
}

#: The paper's skew sweep (Figures 8, 9, 11).
SKEWS = (0.0, 0.5, 1.0, 1.5)


def scale_preset(scale: str) -> ScalePreset:
    """Look up a preset; raises with the valid names on a typo."""
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
        ) from None


def run_synthetic_job(
    workload_name: str,
    strategy_name: str,
    skew: float,
    preset: ScalePreset,
    seed: int,
    shifts: int = 0,
    adaptive: bool = True,
    pipeline_window: int | None = None,
) -> JobResult:
    """One synthetic-workload run on a fresh cluster (Figures 8/9/11)."""
    workload = SyntheticWorkload.by_name(
        workload_name,
        n_keys=preset.n_keys,
        n_tuples=preset.n_tuples,
        skew=skew,
        seed=seed,
        shifts=shifts,
    )
    if adaptive:
        strategy = Strategy.by_name(strategy_name)
    else:
        strategy = Strategy.fo_non_adaptive()
    cluster = Cluster.homogeneous(preset.n_nodes, NodeSpec())
    kwargs = {}
    if pipeline_window is not None:
        kwargs["pipeline_window"] = pipeline_window
    job = JoinJob(
        cluster=cluster,
        compute_nodes=list(range(preset.n_compute)),
        data_nodes=list(range(preset.n_compute, preset.n_nodes)),
        table=workload.build_table(),
        udf=workload.udf,
        strategy=strategy,
        sizes=workload.sizes,
        memory_cache_bytes=preset.memory_cache_bytes,
        seed=seed,
        **kwargs,
    )
    return job.run(workload.keys())
