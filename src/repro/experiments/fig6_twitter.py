"""Figure 6 — Twitter entity annotation on Muppet: tweets/second.

A bursty tweet stream (hot entities drift over time) is annotated
against a model store; NO, FC, FD, FR and FO run on the stream engine
analog with HBase-analog data nodes.  The metric is annotated tweets
per second, as the paper plots.

Expected shape: FD worst (skew concentrates on the data node holding
the trending entity); FC > NO (batching/prefetch); FO best — roughly
2x NO and ~20% over FR.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.strategies import STREAMING_STRATEGIES
from repro.metrics.report import ExperimentTable
from repro.streaming.muppet import MuppetJoinSimulation
from repro.workloads.tweets import tweet_annotation_workload


@dataclass(frozen=True)
class Fig6Scale:
    """Stream volume for one run."""

    n_entities: int
    n_mentions: int
    n_compute: int
    n_data: int


SCALES = {
    "smoke": Fig6Scale(n_entities=1500, n_mentions=8000, n_compute=3, n_data=3),
    "default": Fig6Scale(n_entities=4000, n_mentions=12000, n_compute=5, n_data=5),
    "paper": Fig6Scale(n_entities=8000, n_mentions=30000, n_compute=10, n_data=10),
}


def run(scale: str = "default", seed: int = 7) -> ExperimentTable:
    """The Figure 6 bars at the requested scale."""
    try:
        preset = SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
        ) from None
    models, stream = tweet_annotation_workload(
        n_entities=preset.n_entities, n_mentions=preset.n_mentions, seed=seed
    )
    table = ExperimentTable(
        title=f"Figure 6 - Twitter annotation throughput on Muppet ({scale})",
        columns=["strategy", "tweets_per_second", "normalized_vs_NO"],
        notes=(
            f"{preset.n_mentions} entity mentions, hot entities drift "
            "every few thousand tweets."
        ),
    )
    throughputs: dict[str, float] = {}
    for strategy in STREAMING_STRATEGIES:
        simulation = MuppetJoinSimulation(
            table=models.build_table(),
            udf=models.udf,
            sizes=models.sizes,
            n_compute_nodes=preset.n_compute,
            n_data_nodes=preset.n_data,
            # The tweet model store is small enough to live in the
            # HBase block cache, so data nodes serve hot rows from
            # memory (the paper's data-node skew is CPU skew here).
            block_cache_bytes=1e9,
            seed=seed,
        )
        result = simulation.run(strategy, stream.mentions)
        throughputs[strategy] = result.throughput
    base = throughputs["NO"]
    for strategy in STREAMING_STRATEGIES:
        table.add_row([strategy, throughputs[strategy], throughputs[strategy] / base])
    return table


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
