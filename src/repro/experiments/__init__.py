"""Experiment harnesses — one module per paper figure.

Each module exposes ``run(scale=..., seed=...)`` returning an
:class:`~repro.metrics.report.ExperimentTable` whose rows are the same
series the paper's figure plots, plus a ``main()`` that prints it.
``python -m repro.experiments`` runs everything and emits the
EXPERIMENTS.md body.

Scales
------
``smoke``
    Seconds; used by the test suite and pytest-benchmark targets.
``default``
    A few minutes total; the scale EXPERIMENTS.md records.
"""

from repro.experiments import (  # noqa: F401  (registry import)
    fig5_clueweb,
    fig6_twitter,
    fig7_tpcds,
    fig8_synthetic_hadoop,
    fig9_adaptive,
    fig11_synthetic_muppet,
)

ALL_EXPERIMENTS = {
    "fig5": fig5_clueweb,
    "fig6": fig6_twitter,
    "fig7": fig7_tpcds,
    "fig8": fig8_synthetic_hadoop,
    "fig9": fig9_adaptive,
    "fig11": fig11_synthetic_muppet,
}

__all__ = ["ALL_EXPERIMENTS"]
