"""Run every experiment and print the EXPERIMENTS.md body.

Usage::

    python -m repro.experiments [--scale smoke|default|paper] [--seed N]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import ALL_EXPERIMENTS
from repro.metrics.charts import render_bars, render_series
from repro.metrics.report import ExperimentTable


def _render_chart(table: ExperimentTable) -> str:
    """Pick the figure-appropriate text chart for a table."""
    if len(table.columns) > 2 and all(
        c.startswith("z=") for c in table.columns[1:]
    ):
        return render_series(table)
    numeric = table.columns[1]
    return render_bars(table, numeric)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="default",
                        choices=["smoke", "default", "paper"])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--only", default=None,
                        help="comma-separated experiment ids (e.g. fig5,fig8)")
    parser.add_argument("--charts", action="store_true",
                        help="render a text chart under each table")
    args = parser.parse_args(argv)

    selected = (
        {name: ALL_EXPERIMENTS[name] for name in args.only.split(",")}
        if args.only
        else ALL_EXPERIMENTS
    )
    for name, module in selected.items():
        start = time.time()
        outcome = module.run(scale=args.scale, seed=args.seed)
        tables = outcome if isinstance(outcome, list) else [outcome]
        for table in tables:
            print(table.render())
            print()
            if args.charts:
                print("```")
                print(_render_chart(table))
                print("```")
                print()
        print(f"<!-- {name} took {time.time() - start:.1f}s wall -->")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
