"""repro — runtime optimization of join location in parallel systems.

A complete reproduction of Chandra & Sudarshan, "Runtime Optimization
of Join Location in Parallel Data Management Systems" (2017): per-key
ski-rental routing between map-side (fetch + cache) and reduce-side
(ship the function) join execution, two-tier benefit-managed caching,
runtime cost measurement, compute/data-node load balancing, batching
and ``preMap`` prefetching — together with every substrate the paper's
evaluation needs (cluster simulator, HBase-analog store, MapReduce and
streaming engines, a mini SparkSQL, workload generators) and one
experiment harness per paper figure.

Quick start
-----------
>>> from repro import quickstart_demo
>>> result = quickstart_demo(n_tuples=2000, skew=1.0, seed=7)
>>> result.strategy
'FO'
"""

from repro.core import (
    BatchLoadBalancer,
    CostModel,
    CostParameters,
    ExactCounter,
    JoinLocationOptimizer,
    LossyCounter,
    RequestCosts,
    Route,
    RoutingDecision,
    SizeProfile,
    SkiRental,
    SmoothedValue,
    UpdateTracker,
    buy_threshold,
    competitive_ratio,
)
from repro.cache import LFUDAPolicy, TieredCache, CacheTier
from repro.sim import Cluster, Network, NodeSpec, Resource, Simulator
from repro.store import (
    DataNodeServer,
    HashPartitioner,
    KVStore,
    RangePartitioner,
    RegionMap,
    Row,
    Table,
)
from repro.engine import (
    BatchBuffer,
    ComputeNodeRuntime,
    JobResult,
    JoinJob,
    JoinStageSpec,
    MultiJoinJob,
    PreMapRunner,
    ResultHashMap,
    Strategy,
    StrategyConfig,
    StreamResult,
    UDF,
)
from repro.runtime import (
    BackendRun,
    JoinWorkload,
    LocalBackend,
    RuntimeMetrics,
    ShuffleChannel,
    SimBackend,
    Transport,
)

__version__ = "1.0.0"

__all__ = [
    "BatchLoadBalancer",
    "CostModel",
    "CostParameters",
    "ExactCounter",
    "JoinLocationOptimizer",
    "LossyCounter",
    "RequestCosts",
    "Route",
    "RoutingDecision",
    "SizeProfile",
    "SkiRental",
    "SmoothedValue",
    "UpdateTracker",
    "buy_threshold",
    "competitive_ratio",
    "LFUDAPolicy",
    "TieredCache",
    "CacheTier",
    "Cluster",
    "Network",
    "NodeSpec",
    "Resource",
    "Simulator",
    "DataNodeServer",
    "HashPartitioner",
    "KVStore",
    "RangePartitioner",
    "RegionMap",
    "Row",
    "Table",
    "BatchBuffer",
    "ComputeNodeRuntime",
    "JobResult",
    "JoinJob",
    "JoinStageSpec",
    "MultiJoinJob",
    "PreMapRunner",
    "ResultHashMap",
    "Strategy",
    "StrategyConfig",
    "StreamResult",
    "UDF",
    "BackendRun",
    "JoinWorkload",
    "LocalBackend",
    "RuntimeMetrics",
    "ShuffleChannel",
    "SimBackend",
    "Transport",
    "quickstart_demo",
]


def quickstart_demo(n_tuples: int = 2000, skew: float = 1.0, seed: int = 0):
    """Run a tiny FO join job on a simulated cluster and return metrics.

    A convenience wrapper used by the README and doctests; see
    ``examples/quickstart.py`` for the expanded version.
    """
    from repro.workloads.synthetic import SyntheticWorkload

    workload = SyntheticWorkload.data_heavy(
        n_keys=500, n_tuples=n_tuples, skew=skew, seed=seed, value_size=20_000
    )
    cluster = Cluster.homogeneous(8)
    job = JoinJob(
        cluster=cluster,
        compute_nodes=list(range(4)),
        data_nodes=list(range(4, 8)),
        table=workload.build_table(),
        udf=workload.udf,
        strategy=Strategy.fo(),
        sizes=workload.sizes,
        seed=seed,
    )
    return job.run(workload.keys())
