"""repro — runtime optimization of join location in parallel systems.

A complete reproduction of Chandra & Sudarshan, "Runtime Optimization
of Join Location in Parallel Data Management Systems" (2017): per-key
ski-rental routing between map-side (fetch + cache) and reduce-side
(ship the function) join execution, two-tier benefit-managed caching,
runtime cost measurement, compute/data-node load balancing, batching
and ``preMap`` prefetching — together with every substrate the paper's
evaluation needs (cluster simulator, HBase-analog store, MapReduce and
streaming engines, a mini SparkSQL, workload generators) and one
experiment harness per paper figure.

The curated surface is small: :func:`repro.api.run_join` drives any
engine from one call, :mod:`repro.obs` observes it, and the core
routing-decision types parameterize it.  Everything else lives in its
subpackage (``repro.engine``, ``repro.sim``, ``repro.store``, ...);
the old top-level re-exports still resolve but warn.

Quick start
-----------
>>> from repro import quickstart_demo
>>> result = quickstart_demo(n_tuples=2000, skew=1.0, seed=7)
>>> result.strategy
'FO'
"""

from repro.api import (
    BatchOptions,
    ClusterRunOptions,
    ElasticOptions,
    JobSpec,
    MembershipEvent,
    MemoryOptions,
    ResilienceOptions,
    RunConfig,
    TenancyOptions,
    run_join,
)
from repro.core import (
    CostModel,
    CostParameters,
    JoinLocationOptimizer,
    Route,
    RoutingDecision,
    SizeProfile,
    SkiRental,
)
from repro.engine import Strategy, StrategyConfig, UDF
from repro.obs import MetricsRegistry, ObsOptions, RunReport, Tracer

__version__ = "1.1.0"

__all__ = [
    "BatchOptions",
    "ClusterRunOptions",
    "CostModel",
    "CostParameters",
    "ElasticOptions",
    "JobSpec",
    "JoinLocationOptimizer",
    "MembershipEvent",
    "MemoryOptions",
    "MetricsRegistry",
    "ObsOptions",
    "ResilienceOptions",
    "Route",
    "RoutingDecision",
    "RunConfig",
    "RunReport",
    "SizeProfile",
    "SkiRental",
    "Strategy",
    "StrategyConfig",
    "TenancyOptions",
    "Tracer",
    "UDF",
    "quickstart_demo",
    "run_join",
]

#: Legacy top-level re-exports, kept importable through ``__getattr__``
#: below.  Each maps to the subpackage that owns the name today.
#:
#: Pruned to the names users actually reached for at the top level —
#: the documented entry points of each subpackage.  Internal plumbing
#: types (``BatchBuffer``, ``ResultHashMap``, ``SmoothedValue``,
#: ``RuntimeMetrics``, ...) no longer resolve here; import them from
#: their owning subpackage directly.
_DEPRECATED = {
    # repro.core / repro.placement
    "BatchLoadBalancer": "repro.placement",
    "ExactCounter": "repro.core",
    "LossyCounter": "repro.core",
    "buy_threshold": "repro.core",
    "competitive_ratio": "repro.core",
    # repro.cache
    "CacheTier": "repro.cache",
    "LFUDAPolicy": "repro.cache",
    "TieredCache": "repro.cache",
    # repro.sim
    "Cluster": "repro.sim",
    "Network": "repro.sim",
    "Simulator": "repro.sim",
    # repro.store
    "DataNodeServer": "repro.store",
    "HashPartitioner": "repro.store",
    "KVStore": "repro.store",
    "RangePartitioner": "repro.store",
    "RegionMap": "repro.store",
    "Row": "repro.store",
    "Table": "repro.store",
    # repro.engine
    "JoinJob": "repro.engine",
    # repro.runtime
    "JoinWorkload": "repro.runtime",
    "LocalBackend": "repro.runtime",
    "ShuffleChannel": "repro.runtime",
    "SimBackend": "repro.runtime",
    "Transport": "repro.runtime",
}


def __getattr__(name: str):
    """Resolve legacy re-exports with a deprecation warning.

    Deliberately does not cache the attribute into module globals, so
    the warning machinery (not this module) decides how often to warn.
    """
    module_path = _DEPRECATED.get(name)
    if module_path is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib
    import warnings

    warnings.warn(
        f"importing {name!r} from 'repro' is deprecated; use "
        f"'from {module_path} import {name}' instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(module_path), name)


def __dir__() -> list:
    return sorted([*__all__, *_DEPRECATED])


def quickstart_demo(
    n_tuples: int = 2000, skew: float = 1.0, seed: int = 0
) -> RunReport:
    """Run a tiny FO join through :func:`repro.api.run_join`.

    A convenience wrapper used by the README and doctests; see
    ``examples/quickstart.py`` for the expanded version.
    """
    spec = JobSpec.synthetic(
        "data_heavy",
        n_keys=500,
        n_tuples=n_tuples,
        skew=skew,
        seed=seed,
        value_size=20_000,
    )
    return run_join(
        spec, RunConfig(engine="engine", n_compute=4, n_data=4, seed=seed)
    )
