"""Stage-boundary re-optimization for multi-join pipelines.

A multi-join plan is an ordered sequence of *plan nodes*; each node is
a tuple of stage indices.  Singleton nodes are the classic left-deep
chain; multi-stage nodes are **bushy parallel groups** — a tuple is
submitted to every member stage at once and advances when all of them
complete, so the group costs ``max`` of its members' latencies instead
of their sum.

At each stage boundary (a stage crossing its observation threshold)
the pipeline re-plans the remaining chain from *observed* statistics —
mean per-tuple latency and survival fraction per stage, falling back
to the submit-time estimates where observations are still thin:

* order stages by descending observed load (latency x fraction), so
  the bottleneck stage's queue starts draining first;
* fold stages whose load falls below ``bushy_fraction`` of the
  heaviest stage's into parallel pairs (grouping a contended stage
  would add queueing, so only demonstrably cheap stages are grouped);
* switch only when the projected per-tuple critical path —
  ``sum over nodes of visit-probability x max(member latency)`` —
  improves by at least ``replan_improvement``.

The decision (either way) is recorded as an ``obs`` span event by the
caller, so traces show what the runtime knew and what it chose.
"""

from __future__ import annotations

from dataclasses import dataclass, field

Plan = tuple[tuple[int, ...], ...]


def left_deep(n_stages: int) -> Plan:
    """The submit-time default: one singleton node per stage, in order."""
    return tuple((s,) for s in range(n_stages))


@dataclass(frozen=True)
class StageEstimate:
    """Submit-time beliefs about one stage (possibly wrong)."""

    #: Expected per-tuple service latency, seconds.
    cost: float = 1.0
    #: Expected fraction of tuples carrying a key for this stage.
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ValueError("cost must be non-negative")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")


@dataclass
class StageObservation:
    """Runtime statistics the tracer accumulates for one stage."""

    submitted: int = 0
    completed: int = 0
    latency_sum: float = 0.0
    _submit_at: dict[int, float] = field(default_factory=dict)

    def on_submit(self, tuple_id: int, at: float) -> None:
        self.submitted += 1
        self._submit_at[tuple_id] = at

    def on_complete(self, tuple_id: int, at: float) -> None:
        start = self._submit_at.pop(tuple_id, None)
        if start is None:
            return
        self.completed += 1
        self.latency_sum += max(0.0, at - start)

    def mean_latency(self) -> float | None:
        if self.completed == 0:
            return None
        return self.latency_sum / self.completed


def observed_profile(
    estimates: list[StageEstimate],
    observations: list[StageObservation],
    entered: int,
    min_observations: int,
) -> tuple[list[float], list[float]]:
    """Blend estimates with observations into (costs, fractions).

    A stage's observed statistic replaces its estimate once at least
    ``min_observations`` samples back it; thin stages keep their
    submit-time beliefs, so early checkpoints cannot thrash the plan
    on noise.
    """
    costs: list[float] = []
    fractions: list[float] = []
    for est, obs in zip(estimates, observations):
        mean = obs.mean_latency()
        if mean is not None and obs.completed >= min_observations:
            costs.append(mean)
        else:
            costs.append(est.cost)
        if entered >= min_observations:
            fractions.append(obs.submitted / entered)
        else:
            fractions.append(est.fraction)
    return costs, fractions


def critical_path(plan: Plan, costs: list[float], fractions: list[float]) -> float:
    """Projected per-tuple sojourn: sum of node visit-cost terms.

    A node is visited when any member stage applies (probability
    approximated by the max member fraction) and costs the max member
    latency — members run in parallel.
    """
    total = 0.0
    for node in plan:
        visit = max(fractions[s] for s in node)
        latency = max(costs[s] for s in node)
        total += visit * latency
    return total


def propose_plan(
    costs: list[float],
    fractions: list[float],
    bushy_fraction: float,
) -> Plan:
    """Order by descending load, pair up the demonstrably cheap tail."""
    n = len(costs)
    loads = [costs[s] * fractions[s] for s in range(n)]
    order = sorted(range(n), key=lambda s: (-loads[s], s))
    max_load = max(loads) if loads else 0.0
    heavy = [s for s in order if max_load <= 0 or loads[s] >= bushy_fraction * max_load]
    cheap = [s for s in order if s not in heavy]
    nodes: list[tuple[int, ...]] = [(s,) for s in heavy]
    for i in range(0, len(cheap), 2):
        nodes.append(tuple(cheap[i:i + 2]))
    return tuple(nodes)


@dataclass(frozen=True)
class ReplanDecision:
    """Outcome of one stage-boundary checkpoint."""

    stage: int
    switched: bool
    old_plan: Plan
    new_plan: Plan
    old_cost: float
    new_cost: float


def checkpoint(
    stage: int,
    current: Plan,
    estimates: list[StageEstimate],
    observations: list[StageObservation],
    entered: int,
    min_observations: int,
    bushy_fraction: float,
    improvement: float,
) -> ReplanDecision:
    """Re-plan at one stage boundary; switch only on a real win."""
    costs, fractions = observed_profile(
        estimates, observations, entered, min_observations
    )
    candidate = propose_plan(costs, fractions, bushy_fraction)
    old_cost = critical_path(current, costs, fractions)
    new_cost = critical_path(candidate, costs, fractions)
    switched = (
        candidate != current
        and new_cost < old_cost * (1.0 - improvement)
    )
    return ReplanDecision(
        stage=stage,
        switched=switched,
        old_plan=current,
        new_plan=candidate if switched else current,
        old_cost=old_cost,
        new_cost=new_cost,
    )


def plan_repr(plan: Plan) -> str:
    """Compact human-readable plan string for span events."""
    return " -> ".join(
        f"({'+'.join(str(s) for s in node)})" for node in plan
    )


__all__ = [
    "Plan",
    "StageEstimate",
    "StageObservation",
    "ReplanDecision",
    "left_deep",
    "observed_profile",
    "critical_path",
    "propose_plan",
    "checkpoint",
    "plan_repr",
]
