"""Opt-in knobs for memory-adaptive execution.

Mirrors the :class:`~repro.placement.options.ElasticOptions` pattern: a
frozen dataclass that is **off by default**, so a
:class:`~repro.api.RunConfig` that never mentions memory wires nothing
and stays bit-identical to the unbudgeted engines (enforced
differentially by ``tests/test_memory.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MemoryOptions:
    """Configuration for memory-adaptive execution.

    With ``enabled=False`` (the default) no budget arbiter exists: the
    tiered cache, the local-join build side and the shuffle buffers are
    as unbounded as they always were, and no replanner ever runs.
    """

    #: Master switch; everything below is ignored when False.
    enabled: bool = False
    #: Per-node memory budget in bytes shared by the tiered cache, the
    #: hybrid-join build side and in-flight shuffle buffers.  ``None``
    #: keeps the arbiter accounting-only (never refuses).
    budget_bytes: float | None = None
    #: Hash partitions of the hybrid join's build side (spill unit).
    join_partitions: int = 8
    #: Maximum recursive repartition depth before the join degrades to
    #: chunked block-nested-loop scans of the spilled partition.
    max_recursion: int = 3
    #: Charge in-flight shuffle transfers against the receiver's budget
    #: (a refused transfer stages through the modeled disk tier).
    charge_shuffle: bool = True
    #: Enable stage-boundary re-optimization for multi-join pipelines.
    replan: bool = False
    #: Observed completions a stage needs before its boundary
    #: checkpoint may re-plan the remaining chain.
    replan_min_observations: int = 32
    #: A stage is cheap enough to fold into a bushy parallel group when
    #: its observed load is below this fraction of the heaviest stage's.
    bushy_fraction: float = 0.5
    #: Minimum relative improvement of the projected per-tuple critical
    #: path before the planner actually switches plans.
    replan_improvement: float = 0.02

    def __post_init__(self) -> None:
        if self.budget_bytes is not None and self.budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive (or None)")
        if self.join_partitions < 1:
            raise ValueError("join_partitions must be >= 1")
        if self.max_recursion < 0:
            raise ValueError("max_recursion must be >= 0")
        if self.replan_min_observations < 1:
            raise ValueError("replan_min_observations must be >= 1")
        if not 0.0 < self.bushy_fraction <= 1.0:
            raise ValueError("bushy_fraction must be in (0, 1]")
        if self.replan_improvement < 0:
            raise ValueError("replan_improvement must be non-negative")

    @classmethod
    def off(cls) -> "MemoryOptions":
        """Memory adaptation disabled (the default; bit-identical)."""
        return cls()

    @classmethod
    def on(cls, **overrides) -> "MemoryOptions":
        """Memory adaptation enabled with optional knob overrides."""
        return replace(cls(enabled=True), **overrides)


__all__ = ["MemoryOptions"]
