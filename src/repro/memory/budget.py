"""Per-node memory budget arbiter.

One :class:`MemoryBudget` exists per node when
:class:`~repro.memory.options.MemoryOptions` is enabled; the tiered
cache, the hybrid-join build side and in-flight shuffle buffers all
charge the same arbiter, so pressure in one consumer is visible to the
others.  The arbiter is pure accounting — it never sleeps or schedules;
consumers decide what spilling *means* (and what it costs) when a
reservation is refused.

Runtime budget-shrink events (the ``memory_pressure`` fault kind)
lower the limit mid-run; registered reclaimers are then asked to give
memory back until usage fits under the new ceiling.
"""

from __future__ import annotations

from typing import Callable

_INF = float("inf")


class MemoryBudget:
    """Byte-granular admission control shared by a node's consumers.

    ``try_reserve`` refuses once the limit would be exceeded (counted
    per owner); ``force_reserve`` overdrafts for correctness-critical
    bytes that have nowhere else to live (e.g. the single-row floor of
    a block-nested-loop chunk) so degradation never becomes failure.
    """

    def __init__(self, limit_bytes: float | None, node_id: int = -1) -> None:
        if limit_bytes is not None and limit_bytes <= 0:
            raise ValueError("limit_bytes must be positive (or None)")
        self.node_id = node_id
        self.limit: float = _INF if limit_bytes is None else float(limit_bytes)
        self.used: float = 0.0
        self.refusals = 0
        self.forced = 0
        self.shrinks = 0
        self.reclaimed_bytes = 0.0
        self._by_owner: dict[str, float] = {}
        self._reclaimers: list[tuple[str, Callable[[float], float]]] = []

    # ------------------------------------------------------------------
    # Reservation
    # ------------------------------------------------------------------
    def available(self) -> float:
        return max(0.0, self.limit - self.used)

    def used_by(self, owner: str) -> float:
        return self._by_owner.get(owner, 0.0)

    def try_reserve(self, owner: str, nbytes: float) -> bool:
        """Reserve ``nbytes`` for ``owner``; False once over the limit."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.used + nbytes > self.limit:
            self.refusals += 1
            return False
        self.used += nbytes
        self._by_owner[owner] = self._by_owner.get(owner, 0.0) + nbytes
        return True

    def force_reserve(self, owner: str, nbytes: float) -> None:
        """Reserve unconditionally (overdraft); degradation floor only."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.used + nbytes > self.limit:
            self.forced += 1
        self.used += nbytes
        self._by_owner[owner] = self._by_owner.get(owner, 0.0) + nbytes

    def release(self, owner: str, nbytes: float) -> None:
        """Return ``nbytes`` previously reserved by ``owner``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        held = self._by_owner.get(owner, 0.0)
        give = min(held, nbytes)
        self._by_owner[owner] = held - give
        self.used = max(0.0, self.used - give)

    # ------------------------------------------------------------------
    # Runtime shrink (memory_pressure faults)
    # ------------------------------------------------------------------
    def add_reclaimer(self, owner: str, fn: Callable[[float], float]) -> None:
        """Register ``fn(need_bytes) -> freed_bytes`` for shrink events."""
        self._reclaimers.append((owner, fn))

    def shrink(self, factor: float) -> float:
        """Multiply the limit by ``factor`` and reclaim the overflow.

        Returns the number of bytes reclaimers actually freed.  Usage
        may legitimately stay above the new limit when every consumer
        is already at its degradation floor — subsequent ``try_reserve``
        calls then refuse until releases catch up.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError("shrink factor must be in (0, 1]")
        self.shrinks += 1
        if self.limit is not _INF and self.limit != _INF:
            self.limit *= factor
        freed_total = 0.0
        for _owner, fn in self._reclaimers:
            need = self.used - self.limit
            if need <= 0:
                break
            freed = fn(need)
            freed_total += max(0.0, freed)
        self.reclaimed_bytes += freed_total
        return freed_total

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def counters(self) -> dict[str, float]:
        return {
            "budget_refusals": float(self.refusals),
            "budget_forced": float(self.forced),
            "budget_shrinks": float(self.shrinks),
            "budget_reclaimed_bytes": self.reclaimed_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryBudget(node={self.node_id}, used={self.used:.0f}/"
            f"{self.limit:.0f}, refusals={self.refusals})"
        )


def publish_memory_counters(registry, *sources: dict[str, float]) -> None:
    """Sum counter dicts into ``memory.<name>`` registry counters.

    ``sources`` are dicts as returned by :meth:`MemoryBudget.counters`
    and :meth:`~repro.memory.hybrid_join.HybridHashJoin.counters`; keys
    are summed across sources before publishing, so per-node consumers
    fold into one fleet-wide view.
    """
    totals: dict[str, float] = {}
    for source in sources:
        for name, value in source.items():
            totals[name] = totals.get(name, 0.0) + value
    for name, value in sorted(totals.items()):
        if value:
            registry.counter(f"memory.{name}").inc(value)


__all__ = ["MemoryBudget", "publish_memory_counters"]
