"""Spilling hybrid-hash local join with graceful degradation.

The build side is hash-partitioned; partitions live in memory while the
:class:`~repro.memory.budget.MemoryBudget` allows and **spill whole**
to a modeled disk tier when a reservation is refused (largest resident
partition first, the classic hybrid-hash victim rule).  Probes against
resident partitions answer immediately; probes against spilled
partitions are *deferred* and resolved later — by re-admitting the
partition when memory frees up, by **recursively repartitioning** it
under a fresh hash salt when it alone exceeds the budget, or — at the
recursion cap, or when one key's rows exceed memory by themselves — by
chunked block-nested-loop passes whose chunk floor is a single row
(reserved by overdraft), so the join *degrades* but never crashes and
never drops a tuple.

The structure is pure bookkeeping: it never touches the simulator.
Every byte moved to or from the disk tier is reported through the
``io_cost(nbytes, op)`` hook as seconds of disk service (callers price
it with :func:`repro.vector.kernels.disk_service_times` and charge the
node's single disk arm / the :class:`~repro.core.cost_model.CostModel`).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from repro.store.partitioner import stable_hash

#: ``io_cost(nbytes, op)`` where op is ``"spill"`` or ``"unspill"``.
IoCost = Callable[[float, str], float]


def _no_io(nbytes: float, op: str) -> float:
    return 0.0


class _Partition:
    """One build partition: fully resident XOR fully spilled."""

    __slots__ = ("rows", "bytes", "spilled_rows", "spilled_bytes",
                 "resident", "deferred", "child")

    def __init__(self) -> None:
        #: key -> [(value, size), ...] while resident.
        self.rows: dict[Hashable, list[tuple[Any, float]]] = {}
        self.bytes = 0.0
        #: [(key, value, size), ...] on the modeled disk tier.
        self.spilled_rows: list[tuple[Hashable, Any, float]] = []
        self.spilled_bytes = 0.0
        self.resident = True
        #: [(token, key), ...] probes waiting on the spilled rows.
        self.deferred: list[tuple[Any, Hashable]] = []
        #: Recursive sub-join after a repartition.
        self.child: "HybridHashJoin | None" = None

    def distinct_spilled_keys(self) -> int:
        return len({k for k, _, _ in self.spilled_rows})


class HybridHashJoin:
    """Memory-adaptive build/probe hash join charged to a budget."""

    def __init__(
        self,
        budget=None,
        n_partitions: int = 8,
        max_recursion: int = 3,
        owner: str = "join",
        salt: int = 0,
        depth: int = 0,
        io_cost: IoCost = _no_io,
    ) -> None:
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        self.budget = budget
        self.n_partitions = n_partitions
        self.max_recursion = max_recursion
        self.owner = owner
        self.salt = salt
        self.depth = depth
        self._io_cost = io_cost
        self._partitions = [_Partition() for _ in range(n_partitions)]
        self._reserved = 0.0
        self.spills = 0
        self.unspills = 0
        self.repartitions = 0
        self.spill_bytes = 0.0
        self.unspill_bytes = 0.0
        self.bnl_chunks = 0
        self.io_seconds = 0.0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _index(self, key: Hashable) -> int:
        if self.n_partitions == 1:
            return 0
        return stable_hash((self.salt, key)) % self.n_partitions

    def _io(self, nbytes: float, op: str) -> float:
        if nbytes <= 0:
            return 0.0
        seconds = self._io_cost(nbytes, op)
        self.io_seconds += seconds
        return seconds

    def _reserve(self, nbytes: float) -> bool:
        if self.budget is None:
            return True
        if self.budget.try_reserve(self.owner, nbytes):
            self._reserved += nbytes
            return True
        return False

    def _release(self, nbytes: float) -> None:
        if self.budget is not None and nbytes > 0:
            give = min(nbytes, self._reserved)
            self._reserved -= give
            self.budget.release(self.owner, give)

    def _spill_partition(self, p: _Partition) -> float:
        """Move one resident partition to the disk tier."""
        moved = p.bytes
        for key, pairs in p.rows.items():
            for value, size in pairs:
                p.spilled_rows.append((key, value, size))
        p.rows = {}
        p.spilled_bytes += moved
        p.bytes = 0.0
        p.resident = False
        self._release(moved)
        self.spills += 1
        self.spill_bytes += moved
        return self._io(moved, "spill")

    def _spill_until(self, need: float, exclude: _Partition | None = None) -> float:
        """Spill largest-first until ``need`` bytes fit (or nothing left)."""
        io = 0.0
        if self.budget is None:
            return io
        while self.budget.available() < need:
            victim: _Partition | None = None
            for p in self._partitions:
                if p is exclude or not p.resident or p.bytes <= 0:
                    continue
                if victim is None or p.bytes > victim.bytes:
                    victim = p
            if victim is None:
                break
            io += self._spill_partition(victim)
        return io

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def insert(self, key: Hashable, value: Any, size: float) -> float:
        """Add one build row; returns disk seconds incurred right now."""
        p = self._partitions[self._index(key)]
        if p.child is not None:
            return p.child.insert(key, value, size)
        io = 0.0
        if p.resident:
            ok = self._reserve(size)
            if not ok:
                io += self._spill_until(size, exclude=p)
                ok = self._reserve(size)
            if ok:
                if p.resident:
                    p.rows.setdefault(key, []).append((value, size))
                    p.bytes += size
                    return io
                # The partition was spilled out from under us while
                # making room; the row follows it to the disk tier.
                self._release(size)
        if p.resident:
            # The row cannot be admitted: demote the whole partition
            # (resident XOR spilled — a half-resident partition would
            # answer probes with false definitive misses).
            if p.bytes > 0:
                io += self._spill_partition(p)
            else:
                p.resident = False
        p.spilled_rows.append((key, value, size))
        p.spilled_bytes += size
        self.spill_bytes += size
        io += self._io(size, "spill")
        return io

    # ------------------------------------------------------------------
    # Probe
    # ------------------------------------------------------------------
    def probe(self, key: Hashable) -> tuple[str, list[Any]]:
        """Probe without side effects.

        Returns ``("hit", values)`` when the owning partition is
        resident (``values`` may be empty — a definitive miss), or
        ``("spilled", [])`` when the answer lives on the disk tier and
        needs :meth:`fetch_spilled` / :meth:`defer`.
        """
        p = self._partitions[self._index(key)]
        if p.child is not None:
            return p.child.probe(key)
        if p.resident:
            return "hit", [v for v, _ in p.rows.get(key, ())]
        return "spilled", []

    def fetch_spilled(self, key: Hashable) -> tuple[list[Any], float]:
        """Resolve one probe against a spilled partition *now*.

        Tries to re-admit the partition (spilling siblings if that
        makes room), then recursive repartitioning, then a one-pass
        scan of the spilled rows.  Returns ``(values, disk_seconds)``.
        """
        p = self._partitions[self._index(key)]
        return self._resolve_single(p, key)

    def lookup(self, key: Hashable) -> tuple[list[Any], float]:
        """Probe that must be answered immediately (point lookup)."""
        status, values = self.probe(key)
        if status == "hit":
            return values, 0.0
        return self.fetch_spilled(key)

    def _resolve_single(
        self, p: _Partition, key: Hashable
    ) -> tuple[list[Any], float]:
        if p.child is not None:
            status, values = p.child.probe(key)
            if status == "hit":
                return values, 0.0
            return p.child.fetch_spilled(key)
        if p.resident:
            return [v for v, _ in p.rows.get(key, ())], 0.0
        io = self._try_readmit(p)
        if p.resident:
            return [v for v, _ in p.rows.get(key, ())], io
        if self._can_repartition(p):
            io += self._repartition(p)
            values, more = self._resolve_single(p, key)
            return values, io + more
        # Degradation floor: one scan pass over the spilled rows.
        io += self._io(p.spilled_bytes, "unspill")
        self.bnl_chunks += 1
        return [v for k, v, _ in p.spilled_rows if k == key], io

    def _try_readmit(self, p: _Partition) -> float:
        """Bring a spilled partition back into memory if it fits."""
        if p.resident:
            return 0.0
        need = p.spilled_bytes
        ok = self._reserve(need)
        io = 0.0
        if not ok:
            io += self._spill_until(need, exclude=p)
            ok = self._reserve(need)
        if not ok:
            return io
        io += self._io(need, "unspill")
        self.unspills += 1
        self.unspill_bytes += need
        for key, value, size in p.spilled_rows:
            p.rows.setdefault(key, []).append((value, size))
        p.bytes = need
        p.spilled_rows = []
        p.spilled_bytes = 0.0
        p.resident = True
        return io

    def _can_repartition(self, p: _Partition) -> bool:
        return (
            self.depth < self.max_recursion
            and self.n_partitions > 1
            and p.distinct_spilled_keys() > 1
        )

    def _repartition(self, p: _Partition) -> float:
        """Split an oversized spilled partition under a fresh salt."""
        self.repartitions += 1
        io = self._io(p.spilled_bytes, "unspill")
        self.unspill_bytes += p.spilled_bytes
        child = HybridHashJoin(
            budget=self.budget,
            n_partitions=self.n_partitions,
            max_recursion=self.max_recursion,
            owner=self.owner,
            salt=self.salt + 1,
            depth=self.depth + 1,
            io_cost=self._io_cost,
        )
        for key, value, size in p.spilled_rows:
            io += child.insert(key, value, size)
        p.spilled_rows = []
        p.spilled_bytes = 0.0
        p.child = child
        # Probes already deferred on this partition follow the rows in.
        if p.deferred:
            deferred, p.deferred = p.deferred, []
            for token, key in deferred:
                child.defer(token, key)
        return io

    # ------------------------------------------------------------------
    # Deferred (batch) probes
    # ------------------------------------------------------------------
    def defer(self, token: Any, key: Hashable) -> None:
        """Queue a probe whose partition is spilled for the next drain."""
        p = self._partitions[self._index(key)]
        if p.child is not None:
            p.child.defer(token, key)
        else:
            p.deferred.append((token, key))

    def drain_deferred(self) -> tuple[list[tuple[Any, Hashable, list[Any]]], float]:
        """Resolve every deferred probe; never drops one.

        Returns ``(results, disk_seconds)`` where results holds one
        ``(token, key, values)`` triple per deferred probe, in partition
        order then defer order.
        """
        out: list[tuple[Any, Hashable, list[Any]]] = []
        io = 0.0
        for p in self._partitions:
            io += self._drain_partition(p, out)
        return out, io

    def _drain_partition(
        self, p: _Partition, out: list[tuple[Any, Hashable, list[Any]]]
    ) -> float:
        io = 0.0
        if p.child is not None:
            sub, sub_io = p.child.drain_deferred()
            out.extend(sub)
            return sub_io
        if not p.deferred:
            return io
        deferred, p.deferred = p.deferred, []
        io += self._try_readmit(p)
        if p.resident:
            for token, key in deferred:
                out.append((token, key, [v for v, _ in p.rows.get(key, ())]))
            return io
        if self._can_repartition(p):
            io += self._repartition(p)
            child = p.child
            assert child is not None
            for token, key in deferred:
                status, values = child.probe(key)
                if status == "hit":
                    out.append((token, key, values))
                else:
                    child.defer(token, key)
            sub, sub_io = child.drain_deferred()
            out.extend(sub)
            return io + sub_io
        # Chunked block-nested-loop bottom-out: stream the spilled rows
        # through whatever memory remains (floor: one row, by overdraft)
        # and scan every deferred probe against each chunk.
        matches: dict[int, list[Any]] = {i: [] for i in range(len(deferred))}
        rows = p.spilled_rows
        pos = 0
        budget = self.budget
        while pos < len(rows):
            chunk: dict[Hashable, list[Any]] = {}
            chunk_bytes = 0.0
            first = True
            while pos < len(rows):
                key, value, size = rows[pos]
                if first:
                    if budget is not None and not budget.try_reserve(
                        self.owner, size
                    ):
                        budget.force_reserve(self.owner, size)
                    reserved = size
                    first = False
                elif budget is not None and not budget.try_reserve(
                    self.owner, size
                ):
                    break
                else:
                    reserved += size
                chunk.setdefault(key, []).append(value)
                chunk_bytes += size
                pos += 1
            io += self._io(chunk_bytes, "unspill")
            self.unspill_bytes += chunk_bytes
            self.bnl_chunks += 1
            for i, (_token, key) in enumerate(deferred):
                found = chunk.get(key)
                if found:
                    matches[i].extend(found)
            if budget is not None:
                budget.release(self.owner, reserved)
        for i, (token, key) in enumerate(deferred):
            out.append((token, key, matches[i]))
        return io

    # ------------------------------------------------------------------
    # Lifecycle / pressure / metrics
    # ------------------------------------------------------------------
    def reclaim(self, need: float) -> float:
        """Budget-shrink reclaimer: spill residents until ``need`` freed."""
        freed = 0.0
        while freed < need:
            victim: _Partition | None = None
            for p in self._partitions:
                if p.resident and p.bytes > 0:
                    if victim is None or p.bytes > victim.bytes:
                        victim = p
            if victim is None:
                break
            freed += victim.bytes
            self._spill_partition(victim)
        for p in self._partitions:
            if p.child is not None and freed < need:
                freed += p.child.reclaim(need - freed)
        return freed

    def close(self) -> None:
        """Release every resident byte back to the budget."""
        for p in self._partitions:
            if p.child is not None:
                p.child.close()
            if p.resident and p.bytes > 0:
                self._release(p.bytes)
                p.rows = {}
                p.bytes = 0.0
        self._release(self._reserved)

    def resident_bytes(self) -> float:
        total = 0.0
        for p in self._partitions:
            total += p.bytes
            if p.child is not None:
                total += p.child.resident_bytes()
        return total

    def counters(self) -> dict[str, float]:
        totals = {
            "spills": float(self.spills),
            "unspills": float(self.unspills),
            "repartitions": float(self.repartitions),
            "spill_bytes": self.spill_bytes,
            "unspill_bytes": self.unspill_bytes,
            "bnl_chunks": float(self.bnl_chunks),
        }
        for p in self._partitions:
            if p.child is not None:
                for name, value in p.child.counters().items():
                    totals[name] = totals.get(name, 0.0) + value
        return totals


__all__ = ["HybridHashJoin"]
