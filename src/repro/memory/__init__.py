"""repro.memory — memory-adaptive execution.

Three pieces, all opt-in via :class:`MemoryOptions` on
:class:`~repro.api.RunConfig`:

* :class:`MemoryBudget` — a per-node byte arbiter that the tiered
  cache, the hybrid-join build side and in-flight shuffle buffers all
  charge against; ``memory_pressure`` faults shrink it mid-run.
* :class:`HybridHashJoin` — a spilling hybrid-hash local join that
  degrades gracefully under pressure (whole-partition spills,
  recursive repartitioning, chunked block-nested-loop floor) and
  never drops a tuple.
* :mod:`repro.memory.replan` — stage-boundary re-optimization for
  multi-join pipelines, including bushy parallel groups.
"""

from repro.memory.budget import MemoryBudget, publish_memory_counters
from repro.memory.hybrid_join import HybridHashJoin
from repro.memory.options import MemoryOptions
from repro.memory.replan import (
    ReplanDecision,
    StageEstimate,
    StageObservation,
    checkpoint,
    left_deep,
    plan_repr,
)

__all__ = [
    "HybridHashJoin",
    "MemoryBudget",
    "MemoryOptions",
    "ReplanDecision",
    "StageEstimate",
    "StageObservation",
    "checkpoint",
    "left_deep",
    "plan_repr",
    "publish_memory_counters",
]
