"""Workload generators for every experiment in the paper.

* :mod:`repro.workloads.zipf` — Zipf key streams with optional dynamic
  distribution shifts (Sections 9.3.1-9.3.2),
* :mod:`repro.workloads.synthetic` — the DH / CH / DCH workloads,
* :mod:`repro.workloads.annotation` — entity-annotation corpus + model
  store (ClueWeb09 analog, Section 9.1),
* :mod:`repro.workloads.tweets` — bursty tweet stream with drifting
  hot entities (Section 9.1.2),
* :mod:`repro.workloads.tpcds` — TPC-DS-lite tables and the four
  multi-join queries of Section 9.2,
* :mod:`repro.workloads.genome` — CloudBurst read-alignment analog
  (Appendix A),
* :mod:`repro.workloads.parameter_server` — parameter-server pull/push
  workload (Section 2.2).
"""

from repro.workloads.zipf import (
    ZipfKeySequence,
    sliced_zipf_keys,
    zipf_probabilities,
)
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.annotation import AnnotationWorkload
from repro.workloads.genome import GenomeWorkload
from repro.workloads.parameter_server import ParameterServerWorkload
from repro.workloads.tweets import TweetStream, tweet_annotation_workload
from repro.workloads.tpcds import TPCDSLite

__all__ = [
    "ZipfKeySequence",
    "sliced_zipf_keys",
    "zipf_probabilities",
    "SyntheticWorkload",
    "AnnotationWorkload",
    "GenomeWorkload",
    "ParameterServerWorkload",
    "TweetStream",
    "tweet_annotation_workload",
    "TPCDSLite",
]
