"""The synthetic DH / CH / DCH workloads (Section 9.3).

Three stress profiles, scaled down from the paper's cluster sizes to
simulator-friendly volumes while preserving the ratios that drive the
results:

* **DH** — data heavy: large stored values (the paper used 200 GB with
  ~100 KB fetches), near-zero UDF cost.  Disk and network bound.
* **CH** — compute heavy: small values (20 GB total), ~100 ms UDF.
  CPU bound.
* **DCH** — both: large values *and* ~100 ms UDF.

Keys are drawn from :class:`~repro.workloads.zipf.ZipfKeySequence`
with the experiment's skew ``z``; there is no skew in the *stored*
data — each key appears once with identical size (the paper notes the
stored key is a primary key).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.placement.batch import SizeProfile
from repro.engine.requests import UDF
from repro.store.table import Row, Table
from repro.workloads.zipf import ZipfKeySequence


@dataclass(frozen=True)
class SyntheticWorkload:
    """A fully specified synthetic join workload."""

    name: str
    n_keys: int
    n_tuples: int
    skew: float
    value_size: float
    compute_cost: float
    seed: int = 0
    shifts: int = 0
    key_size: float = 8.0
    param_size: float = 64.0
    result_size: float = 64.0

    def __post_init__(self) -> None:
        if self.n_keys < 1 or self.n_tuples < 0:
            raise ValueError("n_keys must be >= 1 and n_tuples >= 0")
        if self.value_size < 0 or self.compute_cost < 0:
            raise ValueError("value_size and compute_cost must be non-negative")

    # ------------------------------------------------------------------
    # The paper's three profiles (scaled for the simulator)
    # ------------------------------------------------------------------
    @classmethod
    def data_heavy(
        cls,
        n_keys: int = 2000,
        n_tuples: int = 20000,
        skew: float = 0.0,
        seed: int = 0,
        value_size: float = 150_000.0,
        shifts: int = 0,
    ) -> "SyntheticWorkload":
        """DH: 150 KB values, negligible UDF cost."""
        return cls(
            name="DH",
            n_keys=n_keys,
            n_tuples=n_tuples,
            skew=skew,
            value_size=value_size,
            compute_cost=0.0002,
            seed=seed,
            shifts=shifts,
        )

    @classmethod
    def compute_heavy(
        cls,
        n_keys: int = 2000,
        n_tuples: int = 20000,
        skew: float = 0.0,
        seed: int = 0,
        compute_cost: float = 0.1,
        shifts: int = 0,
    ) -> "SyntheticWorkload":
        """CH: small values, ~100 ms UDF invocations."""
        return cls(
            name="CH",
            n_keys=n_keys,
            n_tuples=n_tuples,
            skew=skew,
            value_size=10_000.0,
            compute_cost=compute_cost,
            seed=seed,
            shifts=shifts,
        )

    @classmethod
    def data_compute_heavy(
        cls,
        n_keys: int = 2000,
        n_tuples: int = 20000,
        skew: float = 0.0,
        seed: int = 0,
        value_size: float = 150_000.0,
        compute_cost: float = 0.1,
        shifts: int = 0,
    ) -> "SyntheticWorkload":
        """DCH: 150 KB values *and* ~100 ms UDF invocations."""
        return cls(
            name="DCH",
            n_keys=n_keys,
            n_tuples=n_tuples,
            skew=skew,
            value_size=value_size,
            compute_cost=compute_cost,
            seed=seed,
            shifts=shifts,
        )

    @classmethod
    def by_name(cls, name: str, **kwargs) -> "SyntheticWorkload":
        """Construct one of DH / CH / DCH by its paper abbreviation."""
        factories = {
            "DH": cls.data_heavy,
            "CH": cls.compute_heavy,
            "DCH": cls.data_compute_heavy,
        }
        try:
            return factories[name.upper()](**kwargs)
        except KeyError:
            raise ValueError(
                f"unknown workload {name!r}; expected one of {sorted(factories)}"
            ) from None

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def build_table(self) -> Table:
        """Materialize the stored relation (one row per key)."""
        table = Table(f"synthetic-{self.name.lower()}")
        for key in range(self.n_keys):
            table.put(
                Row(
                    key=int(key),
                    value=f"value-{key}",
                    size=self.value_size,
                    compute_cost=self.compute_cost,
                )
            )
        return table

    def keys(self) -> list[int]:
        """The input key stream (honouring ``shifts``)."""
        sequence = ZipfKeySequence(self.n_keys, self.skew, seed=self.seed)
        drawn = sequence.draw_with_shifts(self.n_tuples, self.shifts)
        return [int(k) for k in drawn]

    @property
    def udf(self) -> UDF:
        """The timing UDF for this workload."""
        return UDF(
            result_size=self.result_size,
            param_size=self.param_size,
            key_size=self.key_size,
        )

    @property
    def sizes(self) -> SizeProfile:
        """Average message sizes for the load balancer."""
        return SizeProfile(
            key_size=self.key_size,
            param_size=self.param_size,
            value_size=self.value_size,
            computed_size=self.result_size,
        )

    @property
    def stored_bytes(self) -> float:
        """Total stored data volume."""
        return self.n_keys * self.value_size
