"""Entity-annotation workload: corpus + model store (Section 9.1).

The paper annotates ~35,000 ClueWeb09 documents (4.5M entity spots)
against 28.7 GB of logistic-regression models whose sizes span bytes to
284.7 MB, with classification cost that varies per model.  Neither the
corpus nor the models are available offline, so this generator
reproduces the three joint distributions that drive Figure 5:

* **token popularity** — Zipf: a few tokens (think "Obama") dominate
  the spot stream;
* **model size** — log-normal with a heavy upper tail, clipped to a
  configurable range;
* **classification cost** — correlated with model size (bigger models
  are slower to evaluate) plus log-normal noise, making some tokens
  expensive regardless of frequency — the skew source CSAW targets.

Popularity and model size are drawn independently per token, matching
the unpleasant reality that frequent tokens are not necessarily cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.placement.batch import SizeProfile
from repro.sim.rng import make_rng
from repro.store.messages import UDF
from repro.store.table import Row, Table
from repro.workloads.zipf import zipf_probabilities


@dataclass(frozen=True)
class AnnotationWorkload:
    """A scaled entity-annotation workload.

    Parameters
    ----------
    n_tokens:
        Distinct tokens (= stored models).
    n_docs:
        Documents in the corpus.
    mean_spots_per_doc:
        Average entity spots per document (Poisson).
    skew:
        Zipf exponent of token popularity.
    median_model_bytes, max_model_bytes, min_model_bytes:
        Log-normal model size distribution (clipped).
    base_cost, cost_per_mb:
        Classification cost model: ``base + cost_per_mb * size_mb``
        times log-normal noise.
    hydration_base, hydration_per_mb:
        Cost of deserializing a stored model into a live object —
        paid per coprocessor call at data nodes, once per fetch at
        compute nodes, never on memory-cache hits.
    context_bytes:
        Size of the text context shipped with each spot (``sp``).
    annotation_bytes:
        Size of one annotation result (``scv``).
    """

    n_tokens: int = 1500
    n_docs: int = 600
    mean_spots_per_doc: int = 25
    skew: float = 1.1
    median_model_bytes: float = 40_000.0
    max_model_bytes: float = 1_500_000.0
    min_model_bytes: float = 200.0
    base_cost: float = 0.002
    cost_per_mb: float = 0.05
    hydration_base: float = 0.0005
    hydration_per_mb: float = 0.02
    hot_fraction: float = 0.01
    hot_size_cap_multiple: float = 5.0
    context_bytes: float = 512.0
    annotation_bytes: float = 128.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_tokens < 1 or self.n_docs < 0:
            raise ValueError("n_tokens must be >= 1 and n_docs >= 0")
        if self.min_model_bytes > self.max_model_bytes:
            raise ValueError("min_model_bytes must not exceed max_model_bytes")

    # ------------------------------------------------------------------
    # Model store
    # ------------------------------------------------------------------
    @cached_property
    def model_sizes(self) -> dict[int, float]:
        """Per-token model size in bytes (heavy-tailed).

        The most popular tokens (lowest ids — the Zipf ranks) have
        their sizes capped at ``hot_size_cap_multiple x median``.  An
        adversarial hot-and-huge assignment would make every
        non-caching technique network-bound on one data node, a regime
        the paper's measurements clearly exclude (their FC is
        CPU-bound); the cap keeps the generator inside the reported
        regime while leaving the heavy size tail intact for the long
        tail of tokens.
        """
        rng = make_rng(self.seed, "model-sizes")
        draws = rng.lognormal(mean=np.log(self.median_model_bytes), sigma=1.2,
                              size=self.n_tokens)
        clipped = np.clip(draws, self.min_model_bytes, self.max_model_bytes)
        n_hot = max(int(self.n_tokens * self.hot_fraction), 1)
        hot_cap = self.hot_size_cap_multiple * self.median_model_bytes
        clipped[:n_hot] = np.minimum(clipped[:n_hot], hot_cap)
        return {token: float(size) for token, size in enumerate(clipped)}

    @cached_property
    def model_hydration(self) -> dict[int, float]:
        """Per-token model deserialization cost in seconds."""
        return {
            token: self.hydration_base + self.hydration_per_mb * size / 1e6
            for token, size in self.model_sizes.items()
        }

    @cached_property
    def model_costs(self) -> dict[int, float]:
        """Per-token classification CPU cost in seconds."""
        rng = make_rng(self.seed, "model-costs")
        noise = rng.lognormal(mean=0.0, sigma=0.5, size=self.n_tokens)
        return {
            token: float(
                (self.base_cost + self.cost_per_mb * self.model_sizes[token] / 1e6)
                * noise[token]
            )
            for token in range(self.n_tokens)
        }

    def build_table(self) -> Table:
        """Materialize the model store for the parallel data store."""
        table = Table("annotation-models")
        for token in range(self.n_tokens):
            table.put(
                Row(
                    key=token,
                    value=f"model-{token}",
                    size=self.model_sizes[token],
                    compute_cost=self.model_costs[token],
                    hydration_cost=self.model_hydration[token],
                )
            )
        return table

    @property
    def total_model_bytes(self) -> float:
        """Total stored model volume (the paper's 28.7 GB, scaled)."""
        return float(sum(self.model_sizes.values()))

    # ------------------------------------------------------------------
    # Corpus
    # ------------------------------------------------------------------
    @cached_property
    def documents(self) -> list[list[int]]:
        """The corpus: one list of spot tokens per document."""
        rng = make_rng(self.seed, "corpus")
        probabilities = zipf_probabilities(self.n_tokens, self.skew)
        docs: list[list[int]] = []
        spot_counts = rng.poisson(self.mean_spots_per_doc, size=self.n_docs)
        for count in spot_counts:
            spots = rng.choice(self.n_tokens, size=max(int(count), 1), p=probabilities)
            docs.append([int(t) for t in spots])
        return docs

    def spot_stream(self) -> list[int]:
        """All spots flattened in document order — our framework's input."""
        return [token for doc in self.documents for token in doc]

    @property
    def n_spots(self) -> int:
        """Total entity spots across the corpus."""
        return sum(len(doc) for doc in self.documents)

    # ------------------------------------------------------------------
    # Framework plumbing
    # ------------------------------------------------------------------
    @property
    def udf(self) -> UDF:
        """The classification UDF (cost comes from each model row)."""
        return UDF(
            result_size=self.annotation_bytes,
            param_size=self.context_bytes,
            key_size=8.0,
        )

    @property
    def sizes(self) -> SizeProfile:
        """Average message sizes for load statistics."""
        mean_model = self.total_model_bytes / self.n_tokens
        return SizeProfile(
            key_size=8.0,
            param_size=self.context_bytes,
            value_size=mean_model,
            computed_size=self.annotation_bytes,
        )
