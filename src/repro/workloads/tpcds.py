"""TPC-DS-lite: scaled tables and the four Figure 7 queries.

The paper runs Q3, Q7, Q27 and Q42 at scale factor 500 — queries that
join ``store_sales`` with 2-4 dimensions.  The generator reproduces
the *shape* that matters for the experiment at laptop scale: a large
fact table with skewed foreign keys referencing small dimensions, and
selective dimension predicates.  Cardinality ratios follow TPC-DS
(dimensions tiny relative to the fact table).

Queries are simplified to the star-join + group-by core the paper's
comparison exercises; HAVING/ORDER/LIMIT clauses run identically on
both sides and are omitted.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.sim.rng import make_rng
from repro.sparklite.expressions import And, Predicate
from repro.sparklite.query import DimensionJoin, StarQuery
from repro.sparklite.relation import Relation, Schema
from repro.workloads.zipf import zipf_probabilities

_CATEGORIES = [
    "Books", "Home", "Electronics", "Jewelry", "Music",
    "Shoes", "Sports", "Children", "Men", "Women",
]
_STATES = ["TN", "SD", "AL", "GA", "MI", "OH"]
_EDUCATION = [
    "Primary", "Secondary", "College", "2 yr Degree",
    "4 yr Degree", "Advanced Degree", "Unknown",
]
_MARITAL = ["M", "S", "D", "W", "U"]


@dataclass(frozen=True)
class TPCDSLite:
    """Scaled-down TPC-DS star schema generator.

    Parameters
    ----------
    fact_rows:
        ``store_sales`` row count (the knob standing in for SF).
    item_skew:
        Zipf exponent of item popularity in sales (hot products).
    """

    fact_rows: int = 30000
    n_dates: int = 1825  # five years of d_date_sk
    n_items: int = 2000
    n_demographics: int = 1920
    n_stores: int = 12
    n_promotions: int = 300
    item_skew: float = 0.8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.fact_rows < 0:
            raise ValueError("fact_rows must be non-negative")

    # ------------------------------------------------------------------
    # Dimensions
    # ------------------------------------------------------------------
    @cached_property
    def date_dim(self) -> Relation:
        schema = Schema(("d_date_sk", "d_year", "d_moy", "d_dom"))
        rows = []
        for sk in range(self.n_dates):
            year = 1998 + sk // 365
            day_of_year = sk % 365
            moy = day_of_year // 30 + 1 if day_of_year // 30 < 12 else 12
            rows.append((sk, year, moy, day_of_year % 30 + 1))
        return Relation("date_dim", schema, rows)

    @cached_property
    def item(self) -> Relation:
        rng = make_rng(self.seed, "item")
        schema = Schema((
            "i_item_sk", "i_item_id", "i_brand_id", "i_category_id",
            "i_category", "i_manufact_id", "i_manager_id",
        ))
        rows = []
        for sk in range(self.n_items):
            category_id = int(rng.integers(0, len(_CATEGORIES)))
            rows.append((
                sk,
                f"ITEM{sk:08d}",
                int(rng.integers(1, 1000)),
                category_id,
                _CATEGORIES[category_id],
                int(rng.integers(1, 200)),
                int(rng.integers(1, 100)),
            ))
        return Relation("item", schema, rows)

    @cached_property
    def customer_demographics(self) -> Relation:
        rng = make_rng(self.seed, "cdemo")
        schema = Schema((
            "cd_demo_sk", "cd_gender", "cd_marital_status", "cd_education_status",
        ))
        rows = [
            (
                sk,
                "M" if rng.random() < 0.5 else "F",
                _MARITAL[int(rng.integers(0, len(_MARITAL)))],
                _EDUCATION[int(rng.integers(0, len(_EDUCATION)))],
            )
            for sk in range(self.n_demographics)
        ]
        return Relation("customer_demographics", schema, rows)

    @cached_property
    def store(self) -> Relation:
        rng = make_rng(self.seed, "store")
        schema = Schema(("s_store_sk", "s_state", "s_gmt_offset"))
        rows = [
            (sk, _STATES[int(rng.integers(0, len(_STATES)))], -5.0)
            for sk in range(self.n_stores)
        ]
        return Relation("store", schema, rows)

    @cached_property
    def promotion(self) -> Relation:
        rng = make_rng(self.seed, "promotion")
        schema = Schema(("p_promo_sk", "p_channel_email", "p_channel_event"))
        rows = [
            (
                sk,
                "Y" if rng.random() < 0.15 else "N",
                "Y" if rng.random() < 0.15 else "N",
            )
            for sk in range(self.n_promotions)
        ]
        return Relation("promotion", schema, rows)

    # ------------------------------------------------------------------
    # Fact table
    # ------------------------------------------------------------------
    @cached_property
    def store_sales(self) -> Relation:
        rng = make_rng(self.seed, "store_sales")
        item_probabilities = zipf_probabilities(self.n_items, self.item_skew)
        schema = Schema((
            "ss_sold_date_sk", "ss_item_sk", "ss_cdemo_sk", "ss_store_sk",
            "ss_promo_sk", "ss_quantity", "ss_list_price", "ss_sales_price",
            "ss_coupon_amt", "ss_ext_sales_price",
        ))
        dates = rng.integers(0, self.n_dates, size=self.fact_rows)
        items = rng.choice(self.n_items, size=self.fact_rows, p=item_probabilities)
        demos = rng.integers(0, self.n_demographics, size=self.fact_rows)
        stores = rng.integers(0, self.n_stores, size=self.fact_rows)
        promos = rng.integers(0, self.n_promotions, size=self.fact_rows)
        quantities = rng.integers(1, 100, size=self.fact_rows)
        list_prices = rng.uniform(1.0, 200.0, size=self.fact_rows)
        discounts = rng.uniform(0.0, 0.5, size=self.fact_rows)
        rows = []
        for i in range(self.fact_rows):
            sales_price = float(list_prices[i] * (1.0 - discounts[i]))
            rows.append((
                int(dates[i]), int(items[i]), int(demos[i]), int(stores[i]),
                int(promos[i]), int(quantities[i]), float(list_prices[i]),
                sales_price, float(list_prices[i] * discounts[i] * 0.1),
                sales_price * int(quantities[i]),
            ))
        return Relation("store_sales", schema, rows)

    def dimensions(self) -> dict[str, Relation]:
        """All dimension relations by name."""
        return {
            "date_dim": self.date_dim,
            "item": self.item,
            "customer_demographics": self.customer_demographics,
            "store": self.store,
            "promotion": self.promotion,
        }

    # ------------------------------------------------------------------
    # The four queries (simplified star cores)
    # ------------------------------------------------------------------
    def q3(self) -> StarQuery:
        """Q3: brand revenue for one manufacturer in November."""
        return StarQuery(
            name="Q3",
            fact=self.store_sales,
            joins=(
                DimensionJoin(self.date_dim, "ss_sold_date_sk", "d_date_sk",
                              And((Predicate("d_moy", "==", 11),))),
                DimensionJoin(self.item, "ss_item_sk", "i_item_sk",
                              And((Predicate("i_manufact_id", "==", 77),))),
            ),
            group_by=("d_year", "i_brand_id"),
            aggregates=(("sum", "ss_ext_sales_price", "sum_agg"),),
        )

    def q7(self) -> StarQuery:
        """Q7: average sales stats for one demographic slice (4 joins)."""
        return StarQuery(
            name="Q7",
            fact=self.store_sales,
            joins=(
                DimensionJoin(
                    self.customer_demographics, "ss_cdemo_sk", "cd_demo_sk",
                    And((
                        Predicate("cd_gender", "==", "M"),
                        Predicate("cd_marital_status", "==", "S"),
                        Predicate("cd_education_status", "==", "College"),
                    )),
                ),
                DimensionJoin(self.date_dim, "ss_sold_date_sk", "d_date_sk",
                              And((Predicate("d_year", "==", 2000),))),
                DimensionJoin(self.item, "ss_item_sk", "i_item_sk"),
                DimensionJoin(self.promotion, "ss_promo_sk", "p_promo_sk",
                              And((Predicate("p_channel_email", "==", "N"),))),
            ),
            group_by=("i_item_id",),
            aggregates=(
                ("avg", "ss_quantity", "agg1"),
                ("avg", "ss_list_price", "agg2"),
                ("avg", "ss_coupon_amt", "agg3"),
                ("avg", "ss_sales_price", "agg4"),
            ),
        )

    def q27(self) -> StarQuery:
        """Q27: per-item, per-state averages for a demographic (4 joins)."""
        return StarQuery(
            name="Q27",
            fact=self.store_sales,
            joins=(
                DimensionJoin(
                    self.customer_demographics, "ss_cdemo_sk", "cd_demo_sk",
                    And((
                        Predicate("cd_gender", "==", "F"),
                        Predicate("cd_marital_status", "==", "D"),
                        Predicate("cd_education_status", "==", "Secondary"),
                    )),
                ),
                DimensionJoin(self.date_dim, "ss_sold_date_sk", "d_date_sk",
                              And((Predicate("d_year", "==", 1999),))),
                DimensionJoin(self.store, "ss_store_sk", "s_store_sk",
                              And((Predicate("s_state", "in",
                                             ("TN", "SD", "AL")),))),
                DimensionJoin(self.item, "ss_item_sk", "i_item_sk"),
            ),
            group_by=("i_item_id", "s_state"),
            aggregates=(
                ("avg", "ss_quantity", "agg1"),
                ("avg", "ss_list_price", "agg2"),
                ("avg", "ss_coupon_amt", "agg3"),
                ("avg", "ss_sales_price", "agg4"),
            ),
        )

    def q42(self) -> StarQuery:
        """Q42: category revenue for one month/year (2 joins)."""
        return StarQuery(
            name="Q42",
            fact=self.store_sales,
            joins=(
                DimensionJoin(self.date_dim, "ss_sold_date_sk", "d_date_sk",
                              And((
                                  Predicate("d_moy", "==", 11),
                                  Predicate("d_year", "==", 2000),
                              ))),
                DimensionJoin(self.item, "ss_item_sk", "i_item_sk",
                              And((Predicate("i_manager_id", "==", 1),))),
            ),
            group_by=("d_year", "i_category_id", "i_category"),
            aggregates=(("sum", "ss_ext_sales_price", "sum_agg"),),
        )

    def queries(self) -> dict[str, StarQuery]:
        """The four Figure 7 queries by name."""
        return {"Q3": self.q3(), "Q7": self.q7(), "Q27": self.q27(), "Q42": self.q42()}
