"""Parameter-server training workload (Section 2.2).

Li et al.'s parameter server shards a model as ``<key, value>`` pairs;
workers pull the parameters their mini-batch touches, compute, and
push updates back.  The paper points out its framework covers the pull
+ compute side — with ski-rental caching and batched asynchronous
pulls standing in for explicit range push/pull — and Section 4.2.3's
update handling matters here more than anywhere: *hot parameters are
also the most frequently pushed*, so a cache that ignores updates
would buy exactly the keys that go stale fastest.

The generator produces:

* a parameter table of ``n_shards`` rows (embedding-style: a few KB
  each, cheap per-access math),
* a pull stream with Zipf access skew (frequent features),
* a co-generated push (update) schedule in which a key's update rate
  is proportional to its pull rate — the adversarial coupling.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Hashable

from repro.placement.batch import SizeProfile
from repro.sim.rng import make_rng
from repro.store.messages import UDF
from repro.store.table import Row, Table
from repro.workloads.zipf import ZipfKeySequence


@dataclass(frozen=True)
class ParameterServerWorkload:
    """A pull/push workload over a sharded model."""

    n_shards: int = 2000
    n_pulls: int = 10000
    skew: float = 1.0
    shard_bytes: float = 4096.0
    gradient_cost: float = 0.0005
    #: Pushes per pull for a key (every ``1/push_ratio`` pulls of a key,
    #: roughly one push lands on it).
    push_ratio: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_shards < 1 or self.n_pulls < 0:
            raise ValueError("n_shards must be >= 1 and n_pulls >= 0")
        if not 0.0 <= self.push_ratio <= 1.0:
            raise ValueError("push_ratio must be in [0, 1]")

    def build_table(self) -> Table:
        """Materialize the parameter shards."""
        table = Table("parameters")
        for shard in range(self.n_shards):
            table.put(
                Row(
                    key=int(shard),
                    value=f"weights-{shard}",
                    size=self.shard_bytes,
                    compute_cost=self.gradient_cost,
                )
            )
        return table

    @cached_property
    def pulls(self) -> list[int]:
        """The pull stream (one parameter key per pull)."""
        sequence = ZipfKeySequence(self.n_shards, self.skew, seed=self.seed)
        return [int(k) for k in sequence.draw(self.n_pulls)]

    def push_schedule(self, duration: float) -> list[tuple[float, Hashable, str]]:
        """Updates spread over ``duration`` seconds of run time.

        Pushes are sampled from the *same* Zipf distribution as pulls
        — frequently pulled keys are frequently pushed — and spread
        uniformly in time, ready to hand to
        :meth:`repro.engine.JoinJob.run` as its ``updates`` argument.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        n_pushes = int(self.n_pulls * self.push_ratio)
        sequence = ZipfKeySequence(self.n_shards, self.skew, seed=self.seed + 1)
        keys = sequence.draw(n_pushes)
        rng = make_rng(self.seed, "push-times")
        times = sorted(rng.uniform(0.0, duration, size=n_pushes))
        return [
            (float(t), int(k), f"weights-v{i}")
            for i, (t, k) in enumerate(zip(times, keys))
        ]

    @property
    def udf(self) -> UDF:
        """The gradient-step UDF."""
        return UDF(result_size=64.0, param_size=128.0, key_size=8.0)

    @property
    def sizes(self) -> SizeProfile:
        """Average message sizes for load statistics."""
        return SizeProfile(
            key_size=8.0,
            param_size=128.0,
            value_size=self.shard_bytes,
            computed_size=64.0,
        )
