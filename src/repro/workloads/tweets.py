"""Synthetic tweet stream with bursty, drifting entity popularity.

Figure 6 annotates a Twitter stream on the Muppet analog.  The paper's
motivation for runtime statistics is exactly this stream's behaviour:
"new events which did not exist earlier may suddenly gain popularity",
so precomputed heavy-hitter lists go stale.  The generator models that:

* a *base* Zipf popularity over all entities, plus
* *trend bursts*: periodically, a random (often previously cold)
  entity grabs a large share of mentions for a window, then fades.

About half the tweets mention at least one entity (the paper's
annotator found entities in ~50% of tweets); entity-less tweets are
excluded from the stream this module emits, since they never reach the
join.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.sim.rng import make_rng
from repro.workloads.annotation import AnnotationWorkload
from repro.workloads.zipf import zipf_probabilities


@dataclass(frozen=True)
class TweetStream:
    """A reproducible bursty entity-mention stream.

    Parameters
    ----------
    n_entities:
        Entity universe size (matching the model store).
    n_mentions:
        Total entity mentions to generate.
    base_skew:
        Zipf exponent of the steady-state popularity.
    burst_every:
        Mentions between trend changes.
    burst_share:
        Fraction of mentions captured by the trending entity during
        its window.
    """

    n_entities: int = 4000
    n_mentions: int = 20000
    base_skew: float = 0.8
    burst_every: int = 2500
    burst_share: float = 0.45
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_entities < 1 or self.n_mentions < 0:
            raise ValueError("n_entities must be >= 1, n_mentions >= 0")
        if not 0.0 <= self.burst_share < 1.0:
            raise ValueError("burst_share must be in [0, 1)")
        if self.burst_every < 1:
            raise ValueError("burst_every must be >= 1")

    @cached_property
    def mentions(self) -> list[int]:
        """The mention stream: one entity key per mention."""
        rng = make_rng(self.seed, "tweets")
        base = zipf_probabilities(self.n_entities, self.base_skew)
        stream: list[int] = []
        produced = 0
        while produced < self.n_mentions:
            window = min(self.burst_every, self.n_mentions - produced)
            trending = int(rng.integers(0, self.n_entities))
            from_base = rng.choice(self.n_entities, size=window, p=base)
            is_burst = rng.random(window) < self.burst_share
            chunk = np.where(is_burst, trending, from_base)
            stream.extend(int(e) for e in chunk)
            produced += window
        return stream

    def trending_entities(self) -> list[int]:
        """The entity that dominated each burst window (for analysis)."""
        counts_per_window = []
        for start in range(0, len(self.mentions), self.burst_every):
            window = self.mentions[start:start + self.burst_every]
            if not window:
                continue
            values, counts = np.unique(window, return_counts=True)
            counts_per_window.append(int(values[counts.argmax()]))
        return counts_per_window


def tweet_annotation_workload(
    n_entities: int = 4000,
    n_mentions: int = 20000,
    seed: int = 0,
) -> tuple[AnnotationWorkload, TweetStream]:
    """Build the Figure 6 setup: a model store plus a tweet stream.

    Tweet entity models are smaller than full document-annotation
    models (short-text features), so the store is rebuilt with a
    lighter size profile.
    """
    models = AnnotationWorkload(
        n_tokens=n_entities,
        n_docs=0,
        median_model_bytes=20_000.0,
        max_model_bytes=1_000_000.0,
        base_cost=0.004,
        cost_per_mb=0.04,
        context_bytes=280.0,  # a tweet
        annotation_bytes=64.0,
        seed=seed,
    )
    stream = TweetStream(n_entities=n_entities, n_mentions=n_mentions, seed=seed)
    return models, stream
