"""Zipf-distributed key streams with optional distribution shifts.

The synthetic experiments (Section 9.3) draw join keys from a Zipf
distribution with skew factor ``z`` from 0 (uniform) to 1.5 (highly
skewed).  The dynamic-distribution experiment (Section 9.3.2) changes
*which* keys are frequent several times during a run; that is modelled
by re-permuting the rank-to-key assignment at fixed stream positions,
so the marginal frequency profile stays identical while the identity of
the heavy hitters moves — exactly the adversarial case for non-adaptive
caching.
"""

from __future__ import annotations

import numpy as np

from repro.sim.rng import make_rng


def zipf_probabilities(n_keys: int, skew: float) -> np.ndarray:
    """Probability vector of a (finite) Zipf distribution.

    ``p(rank) ~ 1 / rank^skew`` over ranks ``1..n_keys``; ``skew = 0``
    degenerates to the uniform distribution.

    Examples
    --------
    >>> p = zipf_probabilities(4, 1.0)
    >>> bool(abs(p.sum() - 1.0) < 1e-12)
    True
    >>> bool(p[0] > p[3])
    True
    """
    if n_keys < 1:
        raise ValueError("n_keys must be >= 1")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    ranks = np.arange(1, n_keys + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    return weights / weights.sum()


class ZipfKeySequence:
    """Reproducible Zipf key stream over integer keys ``0..n_keys-1``.

    Parameters
    ----------
    n_keys:
        Size of the key universe.
    skew:
        Zipf exponent ``z``.
    seed:
        Root seed; two instances with equal parameters produce
        identical streams.
    """

    def __init__(self, n_keys: int, skew: float, seed: int = 0) -> None:
        self.n_keys = n_keys
        self.skew = skew
        self.seed = seed
        self._probabilities = zipf_probabilities(n_keys, skew)

    def draw(self, n_tuples: int) -> np.ndarray:
        """Draw a static-distribution stream of ``n_tuples`` keys."""
        rng = make_rng(self.seed, "zipf-draw")
        return rng.choice(self.n_keys, size=n_tuples, p=self._probabilities)

    def draw_with_shifts(self, n_tuples: int, shifts: int) -> np.ndarray:
        """Draw a stream whose heavy hitters change ``shifts`` times.

        The stream is split into ``shifts + 1`` equal segments; each
        segment applies a fresh random permutation to the rank-to-key
        mapping, so the set of frequent keys changes at each boundary
        while the frequency *profile* is unchanged.
        """
        if shifts < 0:
            raise ValueError("shifts must be non-negative")
        if shifts == 0:
            return self.draw(n_tuples)
        rng = make_rng(self.seed, "zipf-shift")
        ranks = rng.choice(self.n_keys, size=n_tuples, p=self._probabilities)
        keys = np.empty(n_tuples, dtype=np.int64)
        boundaries = np.linspace(0, n_tuples, shifts + 2).astype(np.int64)
        for segment in range(shifts + 1):
            lo, hi = boundaries[segment], boundaries[segment + 1]
            permutation = rng.permutation(self.n_keys)
            keys[lo:hi] = permutation[ranks[lo:hi]]
        return keys

    def expected_counts(self, n_tuples: int) -> np.ndarray:
        """Expected number of accesses per rank for analysis/tests."""
        return self._probabilities * n_tuples


def sliced_zipf_keys(
    n_tuples: int,
    *,
    key_lo: int,
    key_hi: int,
    skew: float,
    seed: int,
) -> np.ndarray:
    """Zipf-distributed keys confined to the slice ``[key_lo, key_hi)``.

    Multi-tenant runs give each tenant a contiguous slice of the shared
    key universe; within the slice the tenant's own skew applies, with
    rank 1 at ``key_lo``.  Same parameters → identical stream.

    Examples
    --------
    >>> keys = sliced_zipf_keys(100, key_lo=10, key_hi=20, skew=1.0, seed=3)
    >>> bool((keys >= 10).all() and (keys < 20).all())
    True
    """
    if key_lo < 0 or key_hi <= key_lo:
        raise ValueError("need 0 <= key_lo < key_hi")
    width = key_hi - key_lo
    local = ZipfKeySequence(width, skew, seed).draw(n_tuples)
    return local.astype(np.int64) + key_lo
