"""Genome read alignment workload (CloudBurst analog, Appendix A).

CloudBurst aligns short reads against a reference sequence with
MapReduce: n-grams (seeds) extracted from reads join with an index of
reference n-grams, and an approximate-matching UDF verifies each
candidate location.  The basic reduce-side implementation skews badly
— common n-grams (low-complexity repeats) pile up on single reducers,
and verification cost varies with the number of candidate locations.

The paper's framework handles this as a map-side join with per-key
routing: the reference n-gram index lives in the parallel store; hot
n-grams get cached at compute nodes; cold ones verify at data nodes.

This generator builds:

* a random reference sequence with planted repeats (the skew source),
* an n-gram index: n-gram -> candidate locations (row size and
  verification cost scale with the candidate count),
* a read set sampled from the reference with errors, emitting one join
  key (seed n-gram) per read per seed position.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.placement.batch import SizeProfile
from repro.sim.rng import make_rng
from repro.store.messages import UDF
from repro.store.table import Row, Table

_BASES = "ACGT"


@dataclass(frozen=True)
class GenomeWorkload:
    """A scaled read-alignment workload.

    Parameters
    ----------
    reference_length:
        Length of the reference sequence in bases.
    n_reads, read_length:
        The read set (each read sampled from the reference).
    ngram:
        Seed length; each read emits ``seeds_per_read`` join keys.
    seeds_per_read:
        Non-overlapping seed positions per read (CloudBurst uses
        ``k+1`` seeds for ``k`` allowed errors).
    repeat_fraction:
        Fraction of the reference covered by a planted repeat — the
        heavy-hitter source: every read overlapping the repeat emits
        the same seeds.
    error_rate:
        Per-base read error probability.
    verify_cost_per_candidate:
        CPU seconds to verify one candidate location (banded alignment
        around the seed hit).
    """

    reference_length: int = 100_000
    n_reads: int = 4000
    read_length: int = 36
    ngram: int = 12
    seeds_per_read: int = 3
    repeat_fraction: float = 0.08
    error_rate: float = 0.01
    verify_cost_per_candidate: float = 0.0004
    location_bytes: float = 12.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.reference_length < self.read_length:
            raise ValueError("reference must be at least one read long")
        if self.read_length < self.ngram * self.seeds_per_read:
            raise ValueError("read too short for the requested seeds")
        if not 0.0 <= self.repeat_fraction < 1.0:
            raise ValueError("repeat_fraction must be in [0, 1)")

    # ------------------------------------------------------------------
    # Reference and index
    # ------------------------------------------------------------------
    @cached_property
    def reference(self) -> str:
        """The reference sequence, with a planted tandem repeat."""
        rng = make_rng(self.seed, "reference")
        bases = [_BASES[i] for i in rng.integers(0, 4, size=self.reference_length)]
        repeat_span = int(self.reference_length * self.repeat_fraction)
        if repeat_span >= 2 * self.ngram:
            # A tandem repeat with period == ngram: every window into
            # the repeat is one of only ``ngram`` distinct n-grams,
            # each hit at hundreds of reference locations — the
            # heavy-hitter, expensive-verification keys of Appendix A.
            unit = "".join(
                _BASES[i] for i in rng.integers(0, 4, size=self.ngram)
            )
            start = self.reference_length // 3
            tiled = (unit * (repeat_span // len(unit) + 1))[:repeat_span]
            bases[start:start + repeat_span] = list(tiled)
        return "".join(bases)

    @cached_property
    def index(self) -> dict[str, list[int]]:
        """n-gram -> sorted candidate locations in the reference."""
        locations: dict[str, list[int]] = {}
        reference = self.reference
        for position in range(len(reference) - self.ngram + 1):
            gram = reference[position:position + self.ngram]
            locations.setdefault(gram, []).append(position)
        return locations

    def build_table(self) -> Table:
        """Materialize the n-gram index for the parallel store.

        Row size and verification cost grow with the candidate count,
        so repeat n-grams are simultaneously the hottest keys and the
        most expensive rows — CloudBurst's skew in one object.
        """
        table = Table("ngram-index")
        for gram, hits in self.index.items():
            table.put(
                Row(
                    key=gram,
                    value=tuple(hits),
                    size=16.0 + self.location_bytes * len(hits),
                    compute_cost=self.verify_cost_per_candidate * len(hits),
                )
            )
        return table

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @cached_property
    def reads(self) -> list[str]:
        """Reads sampled uniformly from the reference, with errors."""
        rng = make_rng(self.seed, "reads")
        starts = rng.integers(
            0, self.reference_length - self.read_length + 1, size=self.n_reads
        )
        reads = []
        for start in starts:
            read = list(self.reference[start:start + self.read_length])
            errors = rng.random(self.read_length) < self.error_rate
            for i in range(self.read_length):
                if errors[i]:
                    read[i] = _BASES[int(rng.integers(0, 4))]
            reads.append("".join(read))
        return reads

    def seed_stream(self) -> list[str]:
        """The join-key stream: one n-gram per seed position per read.

        Seeds absent from the index (read errors landing in a seed)
        are dropped — they can never align, exactly as CloudBurst's
        join discards them.
        """
        index = self.index
        stream: list[str] = []
        for read in self.reads:
            for slot in range(self.seeds_per_read):
                gram = read[slot * self.ngram:(slot + 1) * self.ngram]
                if gram in index:
                    stream.append(gram)
        return stream

    # ------------------------------------------------------------------
    # Framework plumbing
    # ------------------------------------------------------------------
    @property
    def udf(self) -> UDF:
        """The verification UDF (cost scales with candidate count)."""
        return UDF(
            result_size=32.0,
            param_size=float(self.read_length),
            key_size=float(self.ngram),
        )

    @property
    def sizes(self) -> SizeProfile:
        """Average message sizes for load statistics."""
        if self.index:
            mean_row = sum(
                16.0 + self.location_bytes * len(hits)
                for hits in self.index.values()
            ) / len(self.index)
        else:
            mean_row = 16.0
        return SizeProfile(
            key_size=float(self.ngram),
            param_size=float(self.read_length),
            value_size=mean_row,
            computed_size=32.0,
        )

    def heavy_hitter_share(self) -> float:
        """Fraction of the seed stream hitting the top n-gram."""
        from collections import Counter

        stream = self.seed_stream()
        if not stream:
            return 0.0
        return Counter(stream).most_common(1)[0][1] / len(stream)
