"""Executor seam of the runtime kernel: one workload, many engines.

The paper's routing contribution is engine-agnostic, and with the
transport seam extracted (:mod:`repro.runtime.transport`) the four
engines in this repository are thin policies over the same substrate.
This module makes that substrate *callable*: a :class:`JoinWorkload`
is a value describing one join (stored relation, UDF, probe stream),
and a :class:`Backend` turns it into outputs:

* :class:`SimBackend` — runs the workload on the discrete-event
  simulator through any of the four engines (``engine``, ``streaming``,
  ``mapreduce``, ``sparklite``).  Fault schedules and tolerance
  policies plug in uniformly because every engine dispatches through
  the kernel transports.
* :class:`LocalBackend` — runs the same job graph on real
  :mod:`concurrent.futures` workers with no simulation at all:
  wall-clock correctness runs, the ground truth the simulated engines
  are differentially tested against.

Every backend returns the same ``tuple_id -> result`` mapping shape as
:func:`tests.oracle.single_node_hash_join`, which is what lets one
parametrized suite assert all engines × backends agree bit-for-bit.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Hashable, Protocol, Sequence, runtime_checkable

from repro.placement.batch import SizeProfile
from repro.faults.policy import FaultTolerance
from repro.faults.schedule import FaultSchedule
from repro.memory.options import MemoryOptions
from repro.obs.registry import MetricsRegistry, ambient_registry
from repro.obs.tracer import NO_TRACER, Tracer
from repro.perf.mode import reference_mode
from repro.resilience.options import ResilienceOptions
from repro.vector.kernels import apply_udf_batch, disk_service_times
from repro.runtime.metrics import RuntimeMetrics, collect_runtime_metrics
from repro.runtime.transport import ShuffleChannel
from repro.sim.cluster import Cluster
from repro.store.messages import UDF
from repro.store.partitioner import stable_hash
from repro.store.table import Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.synthetic import SyntheticWorkload

#: Engines the simulated backend can drive.
ENGINES = ("engine", "streaming", "mapreduce", "sparklite")


@dataclass(frozen=True)
class JoinWorkload:
    """One join, engine-independently: ``f'(k, p, v)`` over a stream.

    ``udf.apply_fn`` must be set — backends produce *real* outputs, not
    just timings — and must be side-effect free (the locational-
    transparency premise of the whole paper).
    """

    table: Table
    udf: UDF
    keys: tuple[Hashable, ...]
    sizes: SizeProfile
    params: tuple[Any, ...] | None = None

    def __post_init__(self) -> None:
        if self.udf.apply_fn is None:
            raise ValueError(
                "JoinWorkload needs a UDF with apply_fn (real outputs)"
            )
        if self.params is not None and len(self.params) != len(self.keys):
            raise ValueError("params must align one-to-one with keys")

    @classmethod
    def from_synthetic(
        cls,
        workload: "SyntheticWorkload",
        apply_fn: Callable[[Hashable, Any, Any], Any] | None = None,
        params: Sequence[Any] | None = None,
    ) -> "JoinWorkload":
        """Lift a DH/CH/DCH timing workload into a real-output one."""
        fn = apply_fn if apply_fn is not None else (
            lambda k, p, v: f"{k}|{p}|{v}"
        )
        return cls(
            table=workload.build_table(),
            udf=replace(workload.udf, apply_fn=fn),
            keys=tuple(workload.keys()),
            sizes=workload.sizes,
            params=tuple(params) if params is not None else None,
        )

    def stored_values(self) -> dict[Hashable, Any]:
        """Snapshot ``key -> value`` of the stored relation."""
        return {row.key: row.value for row in self.table.rows()}


@dataclass(frozen=True)
class BackendRun:
    """Outcome of one workload execution on one backend."""

    engine: str
    backend: str
    outputs: dict[int, Any]
    #: Simulated makespan (SimBackend) or wall-clock seconds
    #: (LocalBackend).
    duration: float
    metrics: RuntimeMetrics | None = None
    #: The engine-native result value (``JobResult``, ``StreamResult``,
    #: ``ElasticResult``, ...) for callers that want engine-specific
    #: detail the portable fields above do not carry.
    native: Any = None


@runtime_checkable
class Backend(Protocol):
    """Anything that can execute a :class:`JoinWorkload`."""

    def run_join(self, workload: JoinWorkload) -> BackendRun:
        """Run the workload to completion; returns real outputs."""
        ...


@dataclass
class SimBackend:
    """Execute a workload on the discrete-event simulator.

    Parameters
    ----------
    engine:
        Which execution layer to drive (see :data:`ENGINES`).  All of
        them dispatch through the kernel transports, so
        ``fault_schedule`` / ``fault_tolerance`` behave uniformly.
    n_compute, n_data:
        Cluster shape (mapreduce and sparklite treat the sum as one
        undifferentiated node pool, matching their Hadoop/Spark
        deployment model).
    strategy:
        Routing strategy name for the adaptive engines (NO/FC/.../FO).
    """

    engine: str = "engine"
    n_compute: int = 2
    n_data: int = 2
    strategy: str = "FO"
    batch_size: int = 16
    max_wait: float = 0.005
    #: Tuples handed to the columnar submit kernel per sweep (engine /
    #: streaming runners); width 1 degenerates to per-tuple submission.
    vector_width: int = 64
    #: Enable the columnar array-at-a-time kernels.  Forced off by
    #: ``REPRO_PERF_REFERENCE=1``.
    columnar: bool = True
    seed: int = 0
    fault_schedule: FaultSchedule | None = None
    fault_tolerance: FaultTolerance | None = None
    fault_trace: Any = None
    #: Opt-in resilience (repro.resilience).  The event-loop engines
    #: wire the full subsystem; the analytic shuffle engines get
    #: detection verdicts via an after-the-fact heartbeat replay
    #: (their recovery is the ShuffleChannel's at-least-once resend).
    resilience: ResilienceOptions | None = None
    #: Opt-in elastic placement (:class:`repro.placement.ElasticOptions`).
    #: The request/response engines (engine, streaming) wire an
    #: :class:`~repro.placement.elastic.ElasticCoordinator` over the
    #: shared :class:`~repro.placement.service.PlacementService`; the
    #: analytic shuffle engines have no per-key serving path to migrate.
    elastic: Any = None
    #: Mid-run compute-node membership changes
    #: (:class:`repro.engine.elastic.MembershipEvent`); non-empty
    #: routes the ``engine`` runner through :class:`ElasticJoinJob`.
    membership: tuple = ()
    #: Opt-in memory-adaptive execution
    #: (:class:`repro.memory.options.MemoryOptions`).  The
    #: request/response engines arm the full budget arbiter + spilling
    #: hybrid build side; the analytic shuffle engines run a shadow
    #: hybrid over the stored relation (spill traffic priced on the
    #: reduce-side disk and added to the makespan) and charge shuffle
    #: receive buffers against the per-node budgets.
    memory: MemoryOptions | None = None
    memory_cache_bytes: float = 100e6
    #: Opt-in multi-tenant admission
    #: (:class:`repro.tenancy.TenancyOptions`).  The ``engine`` runner
    #: wires per-tenant weighted-fair admission into every compute
    #: node; the streaming and analytic shuffle engines have no
    #: per-tuple admission seam, so the tenancy replay adapter
    #: (:mod:`repro.tenancy.runner`) applies fair queueing in the
    #: harness for them instead.
    tenancy: Any = None
    #: ``tuple_id -> tenant`` map and per-tenant shares for fair
    #: admission (supplied by the tenancy runners).
    tenant_of: Any = None
    tenant_shares: Any = None
    #: Observability: span tracer threaded through whichever engine
    #: runs, and an optional registry the kernel metrics publish into.
    tracer: Tracer = NO_TRACER
    registry: MetricsRegistry | None = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )

    def run_join(self, workload: JoinWorkload) -> BackendRun:
        runner = getattr(self, f"_run_{self.engine}")
        return runner(workload)

    def _cluster(self) -> Cluster:
        return Cluster.homogeneous(self.n_compute + self.n_data)

    # ------------------------------------------------------------------
    # engine / streaming: the adaptive request/response engines
    # ------------------------------------------------------------------
    def _run_engine(self, workload: JoinWorkload) -> BackendRun:
        from repro.engine.job import JoinJob
        from repro.engine.strategies import Strategy

        if self.membership:
            return self._run_elastic(workload)
        cluster = self._cluster()
        job = JoinJob(
            cluster=cluster,
            compute_nodes=list(range(self.n_compute)),
            data_nodes=list(
                range(self.n_compute, self.n_compute + self.n_data)
            ),
            table=workload.table,
            udf=workload.udf,
            strategy=Strategy.by_name(self.strategy),
            sizes=workload.sizes,
            batch_size=self.batch_size,
            max_wait=self.max_wait,
            vector_width=self.vector_width,
            columnar=self.columnar,
            memory_cache_bytes=self.memory_cache_bytes,
            fault_schedule=self.fault_schedule,
            fault_tolerance=self.fault_tolerance,
            fault_trace=self.fault_trace,
            tracer=self.tracer,
            registry=self.registry,
            resilience=self.resilience,
            elastic=self.elastic,
            memory=self.memory,
            tenancy=self.tenancy,
            tenant_of=self.tenant_of,
            tenant_shares=self.tenant_shares,
            seed=self.seed,
        )
        result = job.run(list(workload.keys), params=workload.params)
        return BackendRun(
            engine="engine",
            backend="sim",
            outputs=job.collected_outputs(),
            duration=result.makespan,
            metrics=collect_runtime_metrics(
                cluster,
                transports=[r.transport for r in job.runtimes.values()],
                injector=job.injector,
                registry=self.registry,
            ),
            native=result,
        )

    def _run_elastic(self, workload: JoinWorkload) -> BackendRun:
        """The ``engine`` runner with mid-run membership changes.

        Nodes named by "add" events join later; everything else in the
        compute range is active from the start.
        """
        from repro.engine.elastic import ElasticJoinJob, MembershipEvent
        from repro.engine.strategies import Strategy

        if workload.params is not None:
            raise ValueError(
                "the elastic runner feeds bare key streams; "
                "per-tuple params are not expressible"
            )
        events = list(self.membership)
        for event in events:
            if not isinstance(event, MembershipEvent):
                raise TypeError(
                    f"membership entries must be MembershipEvent, got {event!r}"
                )
        compute = list(range(self.n_compute))
        added = {e.node_id for e in events if e.action == "add"}
        initial = [cn for cn in compute if cn not in added] or compute[:1]
        cluster = self._cluster()
        job = ElasticJoinJob(
            cluster=cluster,
            initial_compute_nodes=initial,
            data_nodes=list(
                range(self.n_compute, self.n_compute + self.n_data)
            ),
            table=workload.table,
            udf=workload.udf,
            strategy=Strategy.by_name(self.strategy),
            sizes=workload.sizes,
            events=events,
            batch_size=self.batch_size,
            max_wait=self.max_wait,
            memory_cache_bytes=self.memory_cache_bytes,
            seed=self.seed,
        )
        result = job.run(list(workload.keys))
        return BackendRun(
            engine="engine",
            backend="sim",
            outputs=job.collected_outputs(),
            duration=result.makespan,
            metrics=collect_runtime_metrics(
                cluster,
                transports=[r.transport for r in job.runtimes.values()],
                registry=self.registry,
            ),
            native=result,
        )

    def _run_streaming(self, workload: JoinWorkload) -> BackendRun:
        from repro.streaming.muppet import MuppetJoinSimulation

        if workload.params is not None:
            raise ValueError(
                "the streaming engine feeds bare key streams; "
                "per-tuple params are not expressible"
            )
        sim = MuppetJoinSimulation(
            table=workload.table,
            udf=workload.udf,
            sizes=workload.sizes,
            n_compute_nodes=self.n_compute,
            n_data_nodes=self.n_data,
            batch_size=self.batch_size,
            max_wait=self.max_wait,
            vector_width=self.vector_width,
            columnar=self.columnar,
            fault_schedule=self.fault_schedule,
            fault_tolerance=self.fault_tolerance,
            fault_trace=self.fault_trace,
            tracer=self.tracer,
            registry=self.registry,
            resilience=self.resilience,
            elastic=self.elastic,
            memory=self.memory,
            seed=self.seed,
        )
        result = sim.run(self.strategy, list(workload.keys))
        job = sim.last_job
        assert job is not None
        return BackendRun(
            engine="streaming",
            backend="sim",
            outputs=job.collected_outputs(),
            duration=result.duration,
            metrics=collect_runtime_metrics(
                job.cluster,
                transports=[r.transport for r in job.runtimes.values()],
                injector=job.injector,
                registry=self.registry,
            ),
            native=result,
        )

    # ------------------------------------------------------------------
    # mapreduce / sparklite: the shuffle engines
    # ------------------------------------------------------------------
    def _install_faults(self, cluster: Cluster, budgets=None):
        """Arm chaos faults on a shuffle engine's cluster (if any)."""
        if self.fault_schedule is None:
            return None
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(
            self.fault_schedule, trace=self.fault_trace, tracer=self.tracer
        )
        injector.install(cluster, budgets=budgets)
        return injector

    def _arm_shuffle_memory(
        self, cluster: Cluster, workload: JoinWorkload
    ) -> "_ShuffleMemory | None":
        """Budget arbiters + shadow build side for the shuffle engines.

        The analytic engines have no per-key serving loop to thread the
        hybrid join through, so the stored relation itself becomes the
        budget-governed build side: every reduce-side access to a
        stored value goes through a :class:`HybridHashJoin` partitioned
        across the node pool, and the spill/unspill seconds it accrues
        are serialized onto the makespan.  Off → everything here is
        skipped and the engines are bit-identical to before.
        """
        memory = self.memory
        if memory is None or not memory.enabled:
            return None
        limit = memory.budget_bytes
        if limit is None:
            limit = self.memory_cache_bytes
        return _ShuffleMemory(
            cluster,
            n_nodes=self.n_compute + self.n_data,
            limit=limit,
            options=memory,
            values=workload.stored_values(),
            value_size=workload.sizes.value_size,
        )

    def _run_mapreduce(self, workload: JoinWorkload) -> BackendRun:
        from repro.mapreduce.api import MapReduceSpec
        from repro.mapreduce.simulated import SimulatedMapReduce

        cluster = self._cluster()
        mem = self._arm_shuffle_memory(cluster, workload)
        injector = self._install_faults(
            cluster, budgets=mem.budgets if mem is not None else None
        )
        values = workload.stored_values()
        udf = workload.udf
        params = workload.params

        def map_fn(tuple_id: int, key: Hashable):
            p = params[tuple_id] if params is not None else None
            return [(key, (tuple_id, p))]

        columnar = self.columnar and not reference_mode()
        apply_fn = udf.apply_fn

        def reduce_fn(key: Hashable, pairs: list[tuple[int, Any]]):
            stored = mem.lookup(key) if mem is not None else values[key]
            if columnar and len(pairs) > 1:
                # One reduce group shares key and stored value; run the
                # UDF over the param column in one sweep.
                results = apply_udf_batch(
                    apply_fn,
                    [key] * len(pairs),
                    [p for _, p in pairs],
                    [stored] * len(pairs),
                )
                return [
                    (tid, out)
                    for (tid, _), out in zip(pairs, results)
                ]
            return [(tid, udf.apply(key, p, stored)) for tid, p in pairs]

        channel = ShuffleChannel(
            cluster,
            tracer=self.tracer,
            budgets=mem.budgets if mem is not None else None,
        )
        engine = SimulatedMapReduce(cluster, shuffle=channel, tracer=self.tracer)
        job_span = None
        if self.tracer.enabled:
            job_span = self.tracer.start(
                "job", at=0.0, engine="mapreduce",
                n_tuples=len(workload.keys),
            )
        result = engine.run(
            MapReduceSpec(map_fn=map_fn, reduce_fn=reduce_fn),
            list(enumerate(workload.keys)),
            span_parent=job_span,
        )
        if job_span is not None:
            self.tracer.end(job_span, at=result.makespan)
        self._replay_resilience(cluster, result.makespan)
        duration = result.makespan
        if mem is not None:
            duration += mem.io_seconds
            mem.publish(channel, self.registry)
        return BackendRun(
            engine="mapreduce",
            backend="sim",
            outputs=dict(result.outputs),
            duration=duration,
            metrics=collect_runtime_metrics(
                cluster, channels=[channel], injector=injector,
                registry=self.registry,
            ),
            native=result,
        )

    def _run_sparklite(self, workload: JoinWorkload) -> BackendRun:
        from repro.sparklite.query import DimensionJoin, StarQuery
        from repro.sparklite.relation import Relation, Schema
        from repro.sparklite.shuffle_exec import ShuffleExecutor

        cluster = self._cluster()
        mem = self._arm_shuffle_memory(cluster, workload)
        injector = self._install_faults(
            cluster, budgets=mem.budgets if mem is not None else None
        )
        values = workload.stored_values()
        # The probe stream is the fact side; the stored relation is a
        # single dimension.  Grouping by tuple id with a max aggregate
        # is the identity on the (unique) joined value, so the query
        # output is exactly ``tuple_id -> stored value``.
        fact = Relation(
            "probe",
            Schema(("tid", "k")),
            list(enumerate(workload.keys)),
        )
        dimension = Relation(
            "stored", Schema(("k", "v")), list(values.items())
        )
        query = StarQuery(
            name="kernel-join",
            fact=fact,
            joins=(
                DimensionJoin(dimension=dimension, fact_key="k", dim_key="k"),
            ),
            group_by=("tid",),
            aggregates=(("max", "v", "v"),),
        )
        channel = ShuffleChannel(
            cluster,
            tracer=self.tracer,
            budgets=mem.budgets if mem is not None else None,
        )
        job_span = None
        if self.tracer.enabled:
            job_span = self.tracer.start(
                "job", at=0.0, engine="sparklite",
                n_tuples=len(workload.keys),
            )
        result = ShuffleExecutor(
            cluster, shuffle=channel, tracer=self.tracer
        ).run(query, span_parent=job_span)
        if job_span is not None:
            self.tracer.end(job_span, at=result.makespan)
        columns = result.result.schema.columns
        tid_at = columns.index("tid")
        value_at = columns.index("v")
        udf = workload.udf
        params = workload.params
        outputs: dict[int, Any] = {}
        if self.columnar and not reference_mode():
            # Gather aligned tid/key/param/value columns from the query
            # result, then apply the UDF in one columnar sweep.
            tids = [row[tid_at] for row in result.result.rows]
            keys = [workload.keys[tid] for tid in tids]
            if mem is not None:
                row_values = [mem.lookup(k) for k in keys]
            else:
                row_values = [row[value_at] for row in result.result.rows]
            p_col = (
                [params[tid] for tid in tids] if params is not None else None
            )
            computed = apply_udf_batch(udf.apply_fn, keys, p_col, row_values)
            outputs = dict(zip(tids, computed))
        else:
            for row in result.result.rows:
                tid = row[tid_at]
                p = params[tid] if params is not None else None
                key = workload.keys[tid]
                stored = mem.lookup(key) if mem is not None else row[value_at]
                outputs[tid] = udf.apply(key, p, stored)
        self._replay_resilience(cluster, result.makespan)
        duration = result.makespan
        if mem is not None:
            duration += mem.io_seconds
            mem.publish(channel, self.registry)
        return BackendRun(
            engine="sparklite",
            backend="sim",
            outputs=outputs,
            duration=duration,
            metrics=collect_runtime_metrics(
                cluster, channels=[channel], injector=injector,
                registry=self.registry,
            ),
            native=result,
        )

    def _replay_resilience(self, cluster: Cluster, horizon: float) -> None:
        """Analytic detection pass for the closed-form shuffle engines."""
        if self.resilience is None or not self.resilience.enabled:
            return
        if not self.resilience.detection or horizon <= 0:
            return
        from repro.resilience import replay_heartbeats

        replay = replay_heartbeats(
            cluster,
            self.resilience,
            range(self.n_compute, self.n_compute + self.n_data),
            horizon,
            registry=ambient_registry(),
        )
        if self.registry is not None:
            from repro.resilience import publish_replay

            publish_replay(replay, self.registry)


class _ShuffleMemory:
    """Shadow memory-adaptive state for the analytic shuffle engines.

    The stored relation is hash-partitioned across per-node
    :class:`~repro.memory.hybrid_join.HybridHashJoin` build sides, each
    charged against its node's :class:`~repro.memory.budget.MemoryBudget`.
    Reduce-side value accesses route through :meth:`lookup`; accrued
    spill/unspill seconds are serialized onto the reported makespan by
    the caller.  Lookups fall back to the plain values dict, so tight
    budgets degrade latency but can never change outputs.
    """

    def __init__(
        self,
        cluster: Cluster,
        n_nodes: int,
        limit: float,
        options: MemoryOptions,
        values: dict[Hashable, Any],
        value_size: float,
    ) -> None:
        from repro.memory.budget import MemoryBudget
        from repro.memory.hybrid_join import HybridHashJoin

        self.values = values
        self.n_nodes = n_nodes
        self.io_seconds = 0.0
        self.budgets = {
            nid: MemoryBudget(limit, node_id=nid) for nid in range(n_nodes)
        }
        self.hybrids: dict[int, Any] = {}
        for nid in range(n_nodes):
            spec = cluster.node(nid).spec

            def io_cost(
                nbytes: float,
                op: str,
                _seek: float = spec.disk_seek,
                _bw: float = spec.disk_bandwidth,
            ) -> float:
                return disk_service_times([_seek], [nbytes], _bw, 1.0)[0]

            self.hybrids[nid] = HybridHashJoin(
                budget=self.budgets[nid],
                n_partitions=options.join_partitions,
                max_recursion=options.max_recursion,
                owner=f"build-{nid}",
                io_cost=io_cost,
            )
        for key, value in values.items():
            self.io_seconds += self._hybrid(key).insert(key, value, value_size)

    def _hybrid(self, key: Hashable) -> Any:
        return self.hybrids[stable_hash(key) % self.n_nodes]

    def lookup(self, key: Hashable) -> Any:
        found, io = self._hybrid(key).lookup(key)
        self.io_seconds += io
        return found[0] if found else self.values[key]

    def publish(
        self, channel: ShuffleChannel | None, registry: MetricsRegistry | None
    ) -> None:
        from repro.memory.budget import publish_memory_counters

        sources = [budget.counters() for budget in self.budgets.values()]
        for hybrid in self.hybrids.values():
            counts = hybrid.counters()
            if any(counts.values()):
                sources.append(counts)
        if self.io_seconds:
            sources.append({"spill_seconds": self.io_seconds})
        if channel is not None and channel.budget_spills:
            sources.append(
                {
                    "shuffle_refusals": float(channel.budget_spills),
                    "shuffle_spill_seconds": channel.spill_seconds,
                }
            )
        publish_memory_counters(ambient_registry(), *sources)
        if registry is not None:
            publish_memory_counters(registry, *sources)


@dataclass
class LocalBackend:
    """Execute a workload on real threads — no simulation anywhere.

    The job graph is the same as the simulated engines': partition the
    probe stream by stable key hash (the kernel's routing hash), batch
    each partition, apply the UDF against a snapshot of the stored
    relation, merge.  ``duration`` is wall-clock seconds, making this
    the backend for "does the real computation agree with the
    simulated one" checks and for benchmarking actual UDFs.
    """

    max_workers: int = 4
    batch_size: int = 64
    #: Tuples gathered per columnar UDF sweep inside each partition.
    vector_width: int = 64
    #: Enable the columnar gather + UDF sweep.  Forced off by
    #: ``REPRO_PERF_REFERENCE=1``.
    columnar: bool = True
    tracer: Tracer = NO_TRACER
    registry: MetricsRegistry | None = None
    #: Accepted for config symmetry with SimBackend; real threads have
    #: no simulated failures to survive, so the options are inert here.
    resilience: ResilienceOptions | None = None
    #: Config symmetry again: real threads use real RAM, there is no
    #: modeled disk tier to spill to, so memory options are inert.
    memory: MemoryOptions | None = None
    #: Config symmetry once more: the tenancy replay adapter drives
    #: this backend per service window and applies fair queueing in
    #: the harness, so the options are inert here too.
    tenancy: Any = None

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.vector_width < 1:
            raise ValueError("vector_width must be >= 1")

    def run_join(self, workload: JoinWorkload) -> BackendRun:
        values = workload.stored_values()
        partitions: list[list[int]] = [[] for _ in range(self.max_workers)]
        for tuple_id, key in enumerate(workload.keys):
            partitions[stable_hash(key) % self.max_workers].append(tuple_id)
        start = time.perf_counter()
        # Local spans live on the wall clock (offsets from job start),
        # not simulated seconds — one run, one clock.
        job_span = None
        if self.tracer.enabled:
            job_span = self.tracer.start(
                "job", at=0.0, engine="local",
                n_tuples=len(workload.keys), workers=self.max_workers,
            )
        outputs: dict[int, Any] = {}
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = [
                pool.submit(self._run_partition, workload, values, part)
                for part in partitions
                if part
            ]
            for future in futures:
                outputs.update(future.result())
        duration = time.perf_counter() - start
        if job_span is not None:
            self.tracer.end(job_span, at=duration)
        if self.registry is not None:
            self.registry.counter("jobs.runs").inc()
            self.registry.counter("jobs.tuples").inc(len(workload.keys))
            self.registry.histogram("jobs.makespan").observe(duration)
        return BackendRun(
            engine="local",
            backend="local",
            outputs=outputs,
            duration=duration,
        )

    def _run_partition(
        self,
        workload: JoinWorkload,
        values: dict[Hashable, Any],
        tuple_ids: list[int],
    ) -> dict[int, Any]:
        udf = workload.udf
        keys = workload.keys
        params = workload.params
        outputs: dict[int, Any] = {}
        if self.columnar and not reference_mode():
            apply_fn = udf.apply_fn
            width = self.vector_width
            for at in range(0, len(tuple_ids), width):
                chunk = tuple_ids[at : at + width]
                chunk_keys = [keys[tid] for tid in chunk]
                chunk_values = [values[k] for k in chunk_keys]
                p_col = (
                    [params[tid] for tid in chunk]
                    if params is not None
                    else None
                )
                computed = apply_udf_batch(
                    apply_fn, chunk_keys, p_col, chunk_values
                )
                outputs.update(zip(chunk, computed))
            return outputs
        for at in range(0, len(tuple_ids), self.batch_size):
            for tuple_id in tuple_ids[at : at + self.batch_size]:
                key = keys[tuple_id]
                p = params[tuple_id] if params is not None else None
                outputs[tuple_id] = udf.apply(key, p, values[key])
        return outputs
