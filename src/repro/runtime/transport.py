"""Transport: the one place messages touch the simulated wire.

Every engine in this repository ultimately moves two kinds of traffic:

* **request/response envelopes** — a compute node ships a batch of
  ``(k, p)`` items to a data node and waits for the answering batch
  (the join engine, the streaming engine, and the indexed sparklite
  executor all speak this protocol), and
* **one-way bulk transfers** — a mapper ships its partition of shuffle
  output to a reducer and never hears back (the MapReduce engines and
  the sparklite shuffle executor).

Before the runtime kernel existed each engine carried its own copy of
the dispatch code, so only the join engine consulted
:meth:`repro.sim.network.Network.delivery_plan` — the fault-injection
seam — and only the join engine had timeouts, retries and replica
fallback.  This module is now the *single* place those live:

* :class:`Transport` — reliable request/response with idempotent
  request ids, per-attempt timeouts with bounded exponential backoff,
  same-id retries (the server replays from its idempotency cache),
  replica fallback after retry exhaustion, and retry-cost charging via
  the ``on_timeout`` hook.
* :class:`ShuffleChannel` — at-least-once one-way transfers: a dropped
  shuffle message is retransmitted after a timeout (bounded backoff),
  duplicated copies arrive at the earliest delivery, and every
  retransmission pays the wire again.

Nothing outside this module calls ``Network.delivery_plan``; a fault
schedule installed at the network therefore perturbs every engine.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.placement.batch import ComputeNodeStats, SizeProfile
from repro.placement.service import WrongRegion
from repro.faults.policy import FaultTolerance
from repro.obs.tracer import NO_TRACER, Span, Tracer
from repro.sim.cluster import Cluster
from repro.sim.events import EventHandle
from repro.store.messages import (
    BatchRequest,
    BatchResponse,
    RequestBlock,
    RequestItem,
    RequestKind,
)
from repro.core.optimizer import Route

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.trace import FaultTrace
    from repro.store.datanode import DataNodeServer


class TransportError(RuntimeError):
    """Raised when a transfer cannot make progress (e.g. endless drops)."""


def ring_successor(ring: "list[Any]", node: Any) -> Any:
    """The next member after ``node`` on a sorted ring, with wrap-around.

    The ring convention shared by every failover path in this codebase:
    a pure function of membership order, so two runs with identical
    seeds pick identical fallback targets.  Both the simulated
    :meth:`Transport.replica_for` and the cluster driver's reroute
    (:mod:`repro.cluster.driver`) route through here.  A one-member
    ring is its own successor.
    """
    if len(ring) == 1:
        return ring[0]
    index = ring.index(node)
    return ring[(index + 1) % len(ring)]


@dataclass(frozen=True, slots=True)
class TransportStats:
    """Counters of one transport's fault-handling activity."""

    requests_sent: int = 0
    timeouts: int = 0
    retries: int = 0
    fallbacks: int = 0
    duplicate_responses: int = 0
    hedges_issued: int = 0
    hedges_won: int = 0
    hedges_lost: int = 0
    failovers: int = 0
    #: Per-request end-to-end latencies (dispatch to first matched
    #: response).  The registry histogram keeps only moments, so tail
    #: percentiles must come from the raw samples kept here.
    latencies: tuple[float, ...] = field(default=(), repr=False)

    def __add__(self, other: "TransportStats") -> "TransportStats":
        return TransportStats(
            requests_sent=self.requests_sent + other.requests_sent,
            timeouts=self.timeouts + other.timeouts,
            retries=self.retries + other.retries,
            fallbacks=self.fallbacks + other.fallbacks,
            duplicate_responses=self.duplicate_responses + other.duplicate_responses,
            hedges_issued=self.hedges_issued + other.hedges_issued,
            hedges_won=self.hedges_won + other.hedges_won,
            hedges_lost=self.hedges_lost + other.hedges_lost,
            failovers=self.failovers + other.failovers,
            latencies=self.latencies + other.latencies,
        )

    def latency_percentile(self, pct: float) -> float:
        """Nearest-rank percentile of the recorded request latencies."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = min(len(ordered) - 1, max(0, int(pct / 100.0 * len(ordered))))
        return ordered[rank]


class _Pending:
    """One in-flight request batch awaiting its response."""

    __slots__ = (
        "dst", "kind", "items", "attempt", "sent_at", "created_at",
        "timer", "hedged", "hedge_timer", "span", "attempt_span",
    )

    def __init__(
        self, dst: int, kind: RequestKind, items: "list[RequestItem] | RequestBlock"
    ) -> None:
        self.dst = dst
        self.kind = kind
        self.items = items
        self.attempt = 0
        self.sent_at = 0.0
        self.created_at = 0.0
        self.timer: EventHandle | None = None
        #: Whether a speculative duplicate is in flight at the replica,
        #: and the timer that would issue one.
        self.hedged = False
        self.hedge_timer: EventHandle | None = None
        #: ``request`` span covering the whole logical batch, and the
        #: ``attempt`` span of the latest (re)transmission.
        self.span: Span | None = None
        self.attempt_span: Span | None = None


class Transport:
    """Reliable request/response channel from one compute node.

    Parameters
    ----------
    cluster:
        The simulated hardware (network + event loop).
    node_id:
        The sending node this transport belongs to.
    servers:
        Data-node servers by node id — the RPC targets.  Their sorted
        key order doubles as the replica ring for fallback.
    sizes:
        Average message sizes handed to the serving side.
    key_size, param_size:
        Wire sizes used to price request batches.
    comp_stats:
        Optional ``dst -> ComputeNodeStats | None`` provider; called at
        every (re)transmission of a compute batch so piggybacked load
        statistics are fresh on retries too.
    on_response:
        Required callback receiving every matched (or id-less)
        :class:`BatchResponse`.  Late duplicates never reach it.
    on_dispatch:
        Optional ``(dst, kind, items)`` callback fired once per logical
        request at first transmission (in-flight accounting).
    on_timeout:
        Optional ``(dst, waited_seconds)`` callback fired per timeout —
        the retry-cost charging hook (cost models subscribe here).
    on_abandon:
        Optional ``(dst, kind, items)`` callback fired when a batch
        gives up on its primary and degrades to a replica fallback.
    fault_tolerance:
        Timeout/retry/fallback knobs; ``None`` (or a disabled policy)
        sends fire-and-forget requests exactly like the
        pre-fault-tolerance engine.
    fault_trace:
        Optional :class:`repro.metrics.trace.FaultTrace` receiving one
        event per timeout / retry / fallback / duplicate response.
    tracer:
        Span tracer (:data:`repro.obs.tracer.NO_TRACER` by default).
        When enabled, every logical batch gets a ``request`` span,
        every (re)transmission an ``attempt`` child span, and the
        timeout/retry/fallback machinery emits events under the
        request span.
    """

    def __init__(
        self,
        cluster: Cluster,
        node_id: int,
        servers: "dict[int, DataNodeServer]",
        sizes: SizeProfile,
        *,
        key_size: float = 8.0,
        param_size: float = 64.0,
        comp_stats: Callable[[int], ComputeNodeStats | None] | None = None,
        on_response: Callable[[BatchResponse], None] | None = None,
        on_dispatch: (
            Callable[[int, RequestKind, "list[RequestItem] | RequestBlock"], None]
            | None
        ) = None,
        on_timeout: Callable[[int, float], None] | None = None,
        on_abandon: (
            Callable[[int, RequestKind, "list[RequestItem] | RequestBlock"], None]
            | None
        ) = None,
        fault_tolerance: FaultTolerance | None = None,
        fault_trace: "FaultTrace | None" = None,
        tracer: Tracer = NO_TRACER,
    ) -> None:
        self.cluster = cluster
        self.node_id = node_id
        self.servers = servers
        self.sizes = sizes
        self.key_size = key_size
        self.param_size = param_size
        self.comp_stats = comp_stats
        self.on_response = on_response
        self.on_dispatch = on_dispatch
        self.on_timeout = on_timeout
        self.on_abandon = on_abandon
        self.fault_tolerance = fault_tolerance
        self.fault_trace = fault_trace
        self.tracer = tracer
        self._ring = sorted(servers)
        self._pending: dict[str, _Pending] = {}
        self._rid_seq = 0
        #: Fault-handling counters (see :meth:`stats`).
        self.requests_sent = 0
        self.timeouts = 0
        self.retries = 0
        self.fallbacks = 0
        self.duplicate_responses = 0
        #: Batches refused under a newer placement epoch and re-routed
        #: (elastic placement only; see :meth:`_redirect`).  Not part of
        #: :class:`TransportStats` — the placement service's own
        #: counters are the published record.
        self.redirects = 0
        #: Optional straggler-hedging policy (duck-typed: ``observe``
        #: latencies, ``delay() -> float | None``).  ``None`` keeps the
        #: transport bit-identical to its pre-resilience behaviour.
        self.hedge_policy: Any | None = None
        #: Whether :meth:`fail_node` may replay pending batches at a new
        #: owner.  Replay is exactly-once only for idempotent requests,
        #: so callers clear this for side-effecting UDFs.
        self.replay_on_failover = True
        self.hedges_armed = 0
        self.hedges_issued = 0
        self.hedges_won = 0
        self.hedges_lost = 0
        self.failovers = 0
        self.request_latencies: list[float] = []

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        dst: int,
        kind: RequestKind,
        items: "list[RequestItem] | RequestBlock",
        attempt: int = 0,
        span_parent: Span | None = None,
    ) -> str:
        """Transmit one new logical request batch; returns its id.

        ``items`` is either a ``RequestItem`` list or one columnar
        :class:`RequestBlock` (the optimized batch-buffer flush);
        flushers hand over ownership, so blocks are kept by reference.
        ``attempt`` seeds the backoff clock: fallback batches inherit
        the exhausted batch's attempt count so successive replica
        generations wait longer instead of hammering replicas at the
        base timeout.  ``span_parent`` nests the batch's ``request``
        span (a batch span from the flusher, or — for fallback
        generations — the exhausted request span).
        """
        rid = f"{self.node_id}:{self._rid_seq}"
        self._rid_seq += 1
        self.requests_sent += 1
        if self.on_dispatch is not None:
            self.on_dispatch(dst, kind, items)
        entry = _Pending(
            dst, kind,
            items if isinstance(items, RequestBlock) else list(items),
        )
        entry.attempt = attempt
        entry.created_at = self.cluster.sim.now
        if self.tracer.enabled:
            entry.span = self.tracer.start(
                "request",
                parent=span_parent,
                at=self.cluster.sim.now,
                rid=rid,
                src=self.node_id,
                dst=dst,
                kind=kind.name,
                items=len(items),
            )
        self._pending[rid] = entry
        self._transmit(rid, entry, items, attempt)
        if self.hedge_policy is not None and len(self._ring) > 1:
            delay = self.hedge_policy.delay()
            if delay is not None:
                self.hedges_armed += 1
                entry.hedge_timer = self.cluster.sim.schedule_after(
                    delay, lambda: self._fire_hedge(rid)
                )
        return rid

    def pending_count(self) -> int:
        """Live (unanswered, unabandoned) request batches."""
        return len(self._pending)

    def pending_memory_keys(self, dst: int) -> list[Any]:
        """Keys of in-flight memory-routed fetches addressed to ``dst``.

        Each of these keys holds a cache reservation made at routing
        time.  When ``dst`` dies and the batches are *not* replayed
        (``replay_on_failover`` off), no response will ever fulfill
        those reservations — the recovery path uses this accessor to
        cancel them instead of leaking reserved memory.
        """
        keys: list[Any] = []
        for entry in self._pending.values():
            if entry.dst != dst:
                continue
            items = entry.items
            if isinstance(items, RequestBlock):
                keys.extend(
                    key for key, route in zip(items.keys, items.routes)
                    if route is Route.DATA_REQUEST_MEMORY
                )
            else:
                keys.extend(
                    item.key for item in items
                    if item.route is Route.DATA_REQUEST_MEMORY
                )
        return keys

    def stats(self) -> TransportStats:
        """Snapshot of this transport's counters."""
        return TransportStats(
            requests_sent=self.requests_sent,
            timeouts=self.timeouts,
            retries=self.retries,
            fallbacks=self.fallbacks,
            duplicate_responses=self.duplicate_responses,
            hedges_issued=self.hedges_issued,
            hedges_won=self.hedges_won,
            hedges_lost=self.hedges_lost,
            failovers=self.failovers,
            latencies=tuple(self.request_latencies),
        )

    def _transmit(
        self,
        rid: str,
        entry: _Pending,
        items: "list[RequestItem] | RequestBlock",
        attempt: int,
    ) -> None:
        """One (re)transmission of a registered batch."""
        sim = self.cluster.sim
        entry.sent_at = sim.now
        if self.tracer.enabled:
            entry.attempt_span = self.tracer.start(
                "attempt",
                parent=entry.span,
                at=sim.now,
                attempt=attempt,
                dst=entry.dst,
            )
        batch = self._make_batch(rid, entry.kind, items, attempt, entry.dst)
        self._put_on_wire(batch)
        ft = self.fault_tolerance
        if ft is not None and ft.enabled:
            timeout = ft.timeout_for(attempt)
            entry.timer = sim.schedule_at(
                sim.now + timeout, lambda: self._check_timeout(rid, attempt)
            )

    def _make_batch(
        self,
        rid: str,
        kind: RequestKind,
        items: "list[RequestItem] | RequestBlock",
        attempt: int,
        dst: int,
    ) -> BatchRequest:
        """Build the wire envelope for one (re)transmission at ``dst``."""
        if kind is RequestKind.COMPUTE:
            stats = self.comp_stats(dst) if self.comp_stats is not None else None
            if isinstance(items, RequestBlock):
                return BatchRequest(
                    src=self.node_id,
                    dst=dst,
                    compute_block=items,
                    comp_stats=stats,
                    request_id=rid,
                    attempt=attempt,
                )
            return BatchRequest(
                src=self.node_id,
                dst=dst,
                compute_items=items,
                comp_stats=stats,
                request_id=rid,
                attempt=attempt,
            )
        if isinstance(items, RequestBlock):
            return BatchRequest(
                src=self.node_id, dst=dst, data_block=items,
                request_id=rid, attempt=attempt,
            )
        return BatchRequest(
            src=self.node_id, dst=dst, data_items=items,
            request_id=rid, attempt=attempt,
        )

    def _put_on_wire(self, batch: BatchRequest) -> None:
        """Book the NIC and schedule every planned delivery of ``batch``."""
        sim = self.cluster.sim
        network = self.cluster.network
        transfer = network.transfer(
            sim.now, self.node_id, batch.dst,
            batch.request_bytes(self.key_size, self.param_size),
        )
        for extra in network.delivery_plan(
            self.node_id, batch.dst, sim.now, transfer.arrive
        ):
            sim.schedule_at(
                transfer.arrive + extra, lambda: self._deliver(batch)
            )

    # ------------------------------------------------------------------
    # Serving side (request in, response back)
    # ------------------------------------------------------------------
    def _deliver(self, batch: BatchRequest) -> None:
        sim = self.cluster.sim
        server = self.servers[batch.dst]
        # A late duplicate delivery of an already-answered batch has no
        # live entry; its serve span then hangs off the trace root.
        entry = (
            self._pending.get(batch.request_id)
            if batch.request_id is not None
            else None
        )
        try:
            served = server.serve(
                sim.now, batch, self.sizes,
                parent_span=entry.span if entry is not None else None,
            )
        except WrongRegion as exc:
            # Elastic placement moved a region between dispatch and
            # delivery; the server refused before performing any effect.
            # Re-route the live batch to the current owners.  A late
            # duplicate of an already-settled batch just dies here.
            if entry is not None:
                self._redirect(batch.request_id, entry, exc)
            return
        response = served.response

        def send_response() -> None:
            network = self.cluster.network
            transfer = network.transfer(
                sim.now, batch.dst, self.node_id, response.payload_bytes
            )
            for extra in network.delivery_plan(
                batch.dst, self.node_id, sim.now, transfer.arrive
            ):
                sim.schedule_at(
                    transfer.arrive + extra,
                    lambda: self._handle_response(response),
                )

        sim.schedule_at(served.ready_at, send_response)

    def _handle_response(self, response: BatchResponse) -> None:
        if response.request_id is not None:
            entry = self._pending.pop(response.request_id, None)
            if entry is None:
                # Late original after a retry already answered, a
                # network-duplicated response, or a batch that has
                # since degraded to a replica: the token is dead.
                self.duplicate_responses += 1
                self._record_fault(
                    "duplicate-response", response.src,
                    f"rid={response.request_id}",
                )
                if self.tracer.enabled:
                    self.tracer.event(
                        "duplicate-response",
                        at=self.cluster.sim.now,
                        rid=response.request_id,
                        src=response.src,
                    )
                return
            if entry.timer is not None:
                entry.timer.cancel()
            if entry.hedge_timer is not None:
                entry.hedge_timer.cancel()
                entry.hedge_timer = None
            if entry.hedged:
                if response.src != entry.dst:
                    self.hedges_won += 1
                    # The subscriber's in-flight accounting charged the
                    # primary at dispatch; credit the same bucket the
                    # speculative winner, or the replica's counters go
                    # negative (Appendix C stats reject that).
                    response = response.with_src(entry.dst)
                else:
                    self.hedges_lost += 1
            latency = self.cluster.sim.now - entry.created_at
            self.request_latencies.append(latency)
            if self.hedge_policy is not None:
                self.hedge_policy.observe(latency)
                self._sweep_hedges()
            if self.tracer.enabled:
                now = self.cluster.sim.now
                if entry.attempt_span is not None:
                    self.tracer.end(entry.attempt_span, at=now)
                if entry.span is not None:
                    self.tracer.end(
                        entry.span, at=now, attempts=entry.attempt + 1
                    )
        if self.on_response is not None:
            self.on_response(response)

    def _sweep_hedges(self) -> None:
        """Arm hedge timers for pending batches the policy can now cover.

        The engines pipeline aggressively — most batches are dispatched
        before the policy has observed enough latencies to arm at send
        time — so every completed response re-evaluates the remaining
        in-flight batches.  A batch already past the current quantile
        delay hedges on the next event-loop step (zero-delay timer, so
        all issuance flows through :meth:`_fire_hedge`'s guards).
        """
        if self.hedge_policy is None or len(self._ring) <= 1:
            return
        delay = self.hedge_policy.delay()
        if delay is None:
            return
        now = self.cluster.sim.now
        for rid, entry in self._pending.items():
            if entry.hedged or entry.hedge_timer is not None:
                continue
            remaining = max(0.0, entry.created_at + delay - now)
            self.hedges_armed += 1
            entry.hedge_timer = self.cluster.sim.schedule_after(
                remaining, lambda r=rid: self._fire_hedge(r)
            )

    # ------------------------------------------------------------------
    # Timeout / retry / fallback state machine
    # ------------------------------------------------------------------
    def _check_timeout(self, rid: str, attempt: int) -> None:
        """Timer body: the batch ``rid`` got no response within bounds."""
        entry = self._pending.get(rid)
        if entry is None or entry.attempt != attempt:
            return  # answered, degraded, or already retried
        ft = self.fault_tolerance
        assert ft is not None and ft.request_timeout is not None
        self.timeouts += 1
        waited = ft.timeout_for(attempt)
        # Charge the wasted wait to the subscriber (cost models make
        # flaky nodes look expensive to the router, not free) — unless a
        # hedge is already covering this batch at the replica: the wait
        # is then speculation the hedge pays for, and charging it again
        # would double-bill the cost model for one slow request.
        if self.on_timeout is not None and not entry.hedged:
            self.on_timeout(entry.dst, waited)
        self._record_fault("timeout", entry.dst, f"rid={rid} attempt={attempt}")
        if self.tracer.enabled:
            now = self.cluster.sim.now
            self.tracer.event(
                "timeout", parent=entry.span, at=now, rid=rid, attempt=attempt
            )
            if entry.attempt_span is not None:
                self.tracer.end(entry.attempt_span, at=now, status="timeout")
                entry.attempt_span = None
        if entry.attempt < ft.max_retries or not ft.fallback_to_replica:
            entry.attempt += 1
            self.retries += 1
            self._record_fault("retry", entry.dst,
                               f"rid={rid} attempt={entry.attempt}")
            if self.tracer.enabled:
                self.tracer.event(
                    "retry", parent=entry.span, at=self.cluster.sim.now,
                    rid=rid, attempt=entry.attempt,
                )
            self._transmit(rid, entry, entry.items, entry.attempt)
            return
        self._fallback(rid, entry)

    def _fallback(self, rid: str, entry: _Pending) -> None:
        """Degrade an exhausted batch to a data request at a replica.

        The primary kept timing out; give up on it, fetch the raw
        stored values from the next data node holding a replica of the
        partition, and let the caller run the UDF locally.  The
        fallback batch gets a fresh token and the full retry machinery,
        cycling onward through replicas if this one is also sick —
        with the attempt count (and hence the backoff) carried over,
        so successive generations wait longer rather than hammering
        replicas at the base timeout.
        """
        self._pending.pop(rid, None)
        if entry.timer is not None:
            entry.timer.cancel()
        if entry.hedge_timer is not None:
            entry.hedge_timer.cancel()
            entry.hedge_timer = None
        self.fallbacks += 1
        if self.on_abandon is not None:
            self.on_abandon(entry.dst, entry.kind, entry.items)
        replica = self.replica_for(entry.dst)
        self._record_fault(
            "fallback", entry.dst,
            f"rid={rid} -> data request at replica node {replica}",
        )
        if self.tracer.enabled:
            now = self.cluster.sim.now
            self.tracer.event(
                "fallback", parent=entry.span, at=now,
                rid=rid, primary=entry.dst, replica=replica,
            )
            if entry.span is not None:
                self.tracer.end(
                    entry.span, at=now, status="fallback",
                    attempts=entry.attempt + 1,
                )
        fallback_items: "list[RequestItem] | RequestBlock"
        if isinstance(entry.items, RequestBlock):
            block = entry.items
            fallback_items = RequestBlock(
                kind=RequestKind.DATA,
                keys=list(block.keys),
                routes=[Route.DATA_REQUEST_DISK] * len(block),
                tuple_ids=list(block.tuple_ids),
                params=list(block.params),
            )
        else:
            fallback_items = [
                RequestItem(
                    key=item.key,
                    kind=RequestKind.DATA,
                    route=Route.DATA_REQUEST_DISK,
                    tuple_id=item.tuple_id,
                    params=item.params,
                )
                for item in entry.items
            ]
        # The replacement request nests under the exhausted one, so the
        # trace shows the whole degradation chain as one subtree.
        self.send(replica, RequestKind.DATA, fallback_items,
                  attempt=entry.attempt + 1, span_parent=entry.span)

    def _redirect(self, rid: str, entry: _Pending, exc: WrongRegion) -> None:
        """Re-route a batch refused under a newer placement epoch.

        Under elastic placement a region can migrate between dispatch
        and delivery; the data node then refuses the whole batch before
        any effect (:class:`~repro.placement.service.WrongRegion`), so
        re-sending is safe even for side-effecting UDFs.  The batch is
        regrouped by each key's *current* owner and re-sent — possibly
        to several nodes when a split scattered its keys; items whose
        owner is unchanged harmlessly re-route to the same node.  The
        replacement requests inherit the attempt count (backoff keeps
        growing if placement keeps moving under the batch) and nest
        under the refused request's span.
        """
        self._pending.pop(rid, None)
        if entry.timer is not None:
            entry.timer.cancel()
        if entry.hedge_timer is not None:
            entry.hedge_timer.cancel()
            entry.hedge_timer = None
        self.redirects += 1
        # Credit the in-flight accounting charged at dispatch; the
        # replacement sends below re-charge their own destinations.
        if self.on_abandon is not None:
            self.on_abandon(entry.dst, entry.kind, entry.items)
        self._record_fault(
            "wrong-region", entry.dst, f"rid={rid} epoch={exc.epoch}"
        )
        if self.tracer.enabled:
            now = self.cluster.sim.now
            self.tracer.event(
                "wrong-region", parent=entry.span, at=now,
                rid=rid, dst=entry.dst, epoch=exc.epoch,
            )
            if entry.attempt_span is not None:
                self.tracer.end(entry.attempt_span, at=now, status="wrong_region")
                entry.attempt_span = None
            if entry.span is not None:
                self.tracer.end(
                    entry.span, at=now, status="wrong_region",
                    attempts=entry.attempt + 1,
                )
        region_map = self.servers[entry.dst].kvstore.region_map
        items = (
            entry.items.to_items()
            if isinstance(entry.items, RequestBlock)
            else entry.items
        )
        groups: "dict[int, list[RequestItem]]" = {}
        for item in items:
            owner = exc.owners.get(item.key)
            if owner is None:
                owner = region_map.node_for_key(item.key)
            groups.setdefault(owner, []).append(item)
        rebuild_block = isinstance(entry.items, RequestBlock)
        for owner in sorted(groups):
            group = groups[owner]
            resend: "list[RequestItem] | RequestBlock" = (
                RequestBlock.from_items(entry.kind, group)
                if rebuild_block
                else group
            )
            self.send(owner, entry.kind, resend,
                      attempt=entry.attempt, span_parent=entry.span)

    def replica_for(self, dst: int) -> int:
        """The next data node holding a replica of ``dst``'s partitions.

        The store keeps one logical copy per partition on every data
        node's successor (chain replication at replication factor 2 and
        up); with a single data node the only "replica" is the primary
        itself, and the fallback degenerates to more retries.

        The ring is the *ascending sorted* server-id order with
        wrap-around — a pure function of cluster membership, so two runs
        with identical seeds pick identical fallback/hedge targets.
        """
        return ring_successor(self._ring, dst)

    # ------------------------------------------------------------------
    # Hedging and failover
    # ------------------------------------------------------------------
    def _fire_hedge(self, rid: str) -> None:
        """Hedge-timer body: duplicate a straggling batch at the replica.

        The duplicate reuses the batch's request id, so whichever copy
        answers first settles the entry and the loser dies in the
        idempotent duplicate-response path.  No ``on_dispatch`` /
        ``on_timeout`` hooks fire — the duplicate is pure speculation,
        not a new logical request, and must not be charged as a retry.
        """
        entry = self._pending.get(rid)
        if entry is None or entry.hedged:
            return
        entry.hedge_timer = None
        replica = self.replica_for(entry.dst)
        if replica == entry.dst:
            return
        entry.hedged = True
        self.hedges_issued += 1
        self._record_fault(
            "hedge", entry.dst,
            f"rid={rid} -> speculative duplicate at replica node {replica}",
        )
        if self.tracer.enabled:
            self.tracer.event(
                "hedge", parent=entry.span, at=self.cluster.sim.now,
                rid=rid, primary=entry.dst, replica=replica,
            )
        self._put_on_wire(
            self._make_batch(rid, entry.kind, entry.items, entry.attempt, replica)
        )

    def fail_node(self, dead: int, new_owner: int) -> int:
        """Fail over every pending batch addressed to ``dead``.

        Called by the recovery manager once the failure detector
        confirms a death: each in-flight batch is cancelled and replayed
        verbatim (same items, same kind, same attempt count) at
        ``new_owner``, which has just inherited the dead node's regions.
        A late response from the restarted primary finds no live entry
        and dies in the duplicate-response path.

        Replay is only exactly-once for idempotent requests; when
        :attr:`replay_on_failover` is ``False`` (side-effecting UDFs)
        this is a no-op and in-flight batches keep retrying the primary,
        whose idempotency cache deduplicates once it restarts.

        Returns the number of batches replayed.
        """
        if not self.replay_on_failover or new_owner == dead:
            return 0
        doomed = [rid for rid, e in self._pending.items() if e.dst == dead]
        for rid in doomed:
            entry = self._pending.pop(rid)
            if entry.timer is not None:
                entry.timer.cancel()
            if entry.hedge_timer is not None:
                entry.hedge_timer.cancel()
                entry.hedge_timer = None
            self.failovers += 1
            if self.on_abandon is not None:
                self.on_abandon(entry.dst, entry.kind, entry.items)
            self._record_fault(
                "failover", dead, f"rid={rid} -> replay at node {new_owner}"
            )
            if self.tracer.enabled:
                now = self.cluster.sim.now
                self.tracer.event(
                    "failover", parent=entry.span, at=now,
                    rid=rid, dead=dead, new_owner=new_owner,
                )
                if entry.attempt_span is not None:
                    self.tracer.end(entry.attempt_span, at=now, status="failover")
                if entry.span is not None:
                    self.tracer.end(
                        entry.span, at=now, status="failover",
                        attempts=entry.attempt + 1,
                    )
            self.send(new_owner, entry.kind, entry.items,
                      attempt=entry.attempt, span_parent=entry.span)
        return len(doomed)

    def _record_fault(self, kind: str, node_id: int, detail: str) -> None:
        if self.fault_trace is not None:
            self.fault_trace.record(self.cluster.sim.now, kind, node_id, detail)


@dataclass(frozen=True, slots=True)
class ShuffleOutcome:
    """Result of one at-least-once shuffle transfer."""

    src: int
    dst: int
    size: float
    start: float
    arrive: float
    attempts: int = 1
    duplicates: int = 0

    @property
    def retransmits(self) -> int:
        return self.attempts - 1


class ShuffleChannel:
    """At-least-once one-way bulk transfers (the shuffle seam).

    Map-side engines push shuffle partitions at reducers and never get
    an application-level response; reliability there is the transport's
    job (TCP in Hadoop, this class here).  Each send consults
    :meth:`Network.delivery_plan`; a dropped message is retransmitted
    after ``retry_timeout * backoff_factor ** attempt`` seconds (every
    retransmission books the NIC again), duplicated copies cost nothing
    extra to the receiver beyond the wire, and a delayed copy arrives
    at the earliest delivered offset.

    The channel is deliberately synchronous (no event-loop callbacks):
    the shuffle engines compute arrival times analytically, and the
    channel returns the final arrival directly.
    """

    def __init__(
        self,
        cluster: Cluster,
        retry_timeout: float = 0.25,
        backoff_factor: float = 2.0,
        max_attempts: int = 64,
        tracer: Tracer = NO_TRACER,
        budgets: "dict[int, Any] | None" = None,
    ) -> None:
        if retry_timeout <= 0:
            raise ValueError("retry_timeout must be positive")
        if backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.cluster = cluster
        self.retry_timeout = retry_timeout
        self.backoff_factor = backoff_factor
        self.max_attempts = max_attempts
        self.tracer = tracer
        self.sends = 0
        self.retransmits = 0
        self.duplicates = 0
        self.bytes_retransmitted = 0.0
        #: Memory-adaptive execution: ``dst -> MemoryBudget``.  Each
        #: arriving partition transiently charges the receiver's budget
        #: for its receive buffer; a refusal stages the partition
        #: through the receiver's disk (spill + read-back) instead of
        #: failing the transfer.  Empty = bit-identical to unbudgeted.
        self.budgets: dict[int, Any] = budgets or {}
        self.budget_spills = 0
        self.spill_seconds = 0.0

    def transfer(
        self,
        at: float,
        src: int,
        dst: int,
        size: float,
        span_parent: Span | None = None,
    ) -> ShuffleOutcome:
        """Move ``size`` bytes ``src -> dst``, retrying dropped sends."""
        network = self.cluster.network
        self.sends += 1
        span: Span | None = None
        if self.tracer.enabled:
            span = self.tracer.start(
                "shuffle", parent=span_parent, at=at,
                src=src, dst=dst, size=size,
            )
        send_time = at
        for attempt in range(self.max_attempts):
            transfer = network.transfer(send_time, src, dst, size)
            plan = network.delivery_plan(src, dst, send_time, transfer.arrive)
            if plan:
                extra = min(plan)
                dup = len(plan) - 1
                self.duplicates += dup
                arrive = transfer.arrive + extra
                arrive = self._charge_receive(dst, size, arrive)
                if span is not None:
                    self.tracer.end(
                        span, at=arrive,
                        attempts=attempt + 1, duplicates=dup,
                    )
                return ShuffleOutcome(
                    src=src, dst=dst, size=size, start=at,
                    arrive=arrive,
                    attempts=attempt + 1, duplicates=dup,
                )
            # Dropped: the sender notices after a timeout and resends.
            self.retransmits += 1
            self.bytes_retransmitted += size
            send_time = max(send_time, transfer.arrive) + min(
                self.retry_timeout * self.backoff_factor ** attempt, 60.0
            )
            if span is not None:
                self.tracer.event(
                    "retransmit", parent=span, at=send_time,
                    attempt=attempt + 1, size=size,
                )
        if span is not None:
            self.tracer.end(span, at=send_time, status="error")
        raise TransportError(
            f"shuffle transfer {src}->{dst} dropped {self.max_attempts} "
            "times in a row; the fault schedule never lets it through"
        )

    def _charge_receive(self, dst: int, size: float, arrive: float) -> float:
        """Charge ``dst``'s memory budget for one receive buffer.

        The charge is transient — the buffer drains into the reducer as
        soon as the partition lands — so a fitting transfer releases
        immediately.  A refused transfer is staged through the
        receiver's disk: write the partition out, read it back, both
        reserved on the disk arm, and the arrival is the read-back
        finish.  Degraded, never dropped.
        """
        budget = self.budgets.get(dst)
        if budget is None:
            return arrive
        if budget.try_reserve("shuffle", size):
            budget.release("shuffle", size)
            return arrive
        node = self.cluster.node(dst)
        spec = node.spec
        io = 2.0 * (spec.disk_seek + size / spec.disk_bandwidth)
        _start, done = node.disk.acquire(arrive, io)
        self.budget_spills += 1
        self.spill_seconds += io
        return done


class OnewayChannel:
    """Best-effort one-way datagrams (heartbeats, gossip).

    No retries, no responses, no timers: each send books the wire once
    and consults :meth:`Network.delivery_plan`, so crash windows and
    chaos faults silence or duplicate datagrams exactly as they would
    any other message.  That is the point — the failure detector listens
    on this channel, and must see the same faulty wire the data path
    sees, or it would detect failures the job never experienced (and
    miss the ones it did).
    """

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.sends = 0
        self.dropped = 0

    def send(
        self,
        src: int,
        dst: int,
        size: float,
        payload: Any,
        on_deliver: Callable[[Any, float], None],
    ) -> None:
        """Fire ``payload`` from ``src`` to ``dst`` and forget it."""
        sim = self.cluster.sim
        network = self.cluster.network
        self.sends += 1
        transfer = network.transfer(sim.now, src, dst, size)
        plan = network.delivery_plan(src, dst, sim.now, transfer.arrive)
        if not plan:
            self.dropped += 1
            return
        for extra in plan:
            arrive = transfer.arrive + extra
            sim.schedule_at(
                arrive, lambda p=payload, t=arrive: on_deliver(p, t)
            )
