"""The runtime kernel: one transport/executor substrate for every engine.

Three seams (see DESIGN.md Section 3):

* **Transport** (:mod:`repro.runtime.transport`) — the single place
  wire traffic happens: request/response envelopes with idempotent
  ids, timeouts, backoff, retries, replica fallback
  (:class:`Transport`) and at-least-once one-way shuffle transfers
  (:class:`ShuffleChannel`).  Nothing outside this module consults
  ``Network.delivery_plan``, so a fault schedule installed at the
  network perturbs every engine.
* **Executor** (:mod:`repro.runtime.backend`) — :class:`Backend`
  implementations turning one :class:`JoinWorkload` into outputs:
  :class:`SimBackend` (discrete-event simulation through any of the
  four engines), :class:`LocalBackend` (real ``concurrent.futures``
  workers, wall-clock), and — re-exported lazily from
  :mod:`repro.cluster` — ``ClusterBackend`` (real driver/worker
  processes over IPC).
* **Metrics** (:mod:`repro.runtime.metrics`) — one aggregation point
  (:class:`RuntimeMetrics`) for transport, shuffle and injector
  counters across engines.
"""

from repro.runtime.backend import (
    ENGINES,
    Backend,
    BackendRun,
    JoinWorkload,
    LocalBackend,
    SimBackend,
)
from repro.runtime.metrics import (
    RuntimeMetrics,
    ShuffleStats,
    collect_runtime_metrics,
    shuffle_stats,
    transport_stats,
)
from repro.runtime.transport import (
    ShuffleChannel,
    ShuffleOutcome,
    Transport,
    TransportError,
    TransportStats,
    ring_successor,
)


def __getattr__(name: str):
    # Lazy: repro.cluster drags in multiprocessing machinery that
    # sim-only users should not pay for (and importing it eagerly here
    # would cycle: repro.cluster.backend imports repro.runtime.backend).
    if name == "ClusterBackend":
        from repro.cluster import ClusterBackend

        return ClusterBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ENGINES",
    "Backend",
    "BackendRun",
    "ClusterBackend",
    "JoinWorkload",
    "LocalBackend",
    "SimBackend",
    "RuntimeMetrics",
    "ShuffleStats",
    "collect_runtime_metrics",
    "shuffle_stats",
    "transport_stats",
    "ShuffleChannel",
    "ShuffleOutcome",
    "Transport",
    "TransportError",
    "TransportStats",
    "ring_successor",
]
