"""One metrics pipeline for every engine on the runtime kernel.

Before the kernel, each engine aggregated its own counters its own way
(and three of the four had no fault counters at all, because they had
no fault handling).  Now every engine runs on
:class:`~repro.runtime.transport.Transport` /
:class:`~repro.runtime.transport.ShuffleChannel`, and this module is
the single aggregation point: request/shuffle counters, injector
counters, and cluster resource usage, merged into one
:class:`RuntimeMetrics` snapshot.  The snapshot doubles as a *view* of
the :class:`repro.obs.registry.MetricsRegistry` pipeline — pass a
registry to :func:`collect_runtime_metrics` and every counter it
merges is also published under the ``transport.*`` / ``shuffle.*`` /
``faults.*`` / ``usage.*`` families.  The event-level view is the
:class:`repro.obs.tracer.Tracer` (spans) plus the legacy
:class:`repro.metrics.trace.FaultTrace`, which both the injector and
the transports feed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.registry import MetricsRegistry
from repro.obs.usage import ClusterUsage, collect_usage
from repro.runtime.transport import ShuffleChannel, Transport, TransportStats
from repro.sim.cluster import Cluster


@dataclass(frozen=True, slots=True)
class ShuffleStats:
    """Counters of one-way shuffle traffic (see :class:`ShuffleChannel`)."""

    sends: int = 0
    retransmits: int = 0
    duplicates: int = 0
    bytes_retransmitted: float = 0.0

    def __add__(self, other: "ShuffleStats") -> "ShuffleStats":
        return ShuffleStats(
            sends=self.sends + other.sends,
            retransmits=self.retransmits + other.retransmits,
            duplicates=self.duplicates + other.duplicates,
            bytes_retransmitted=self.bytes_retransmitted + other.bytes_retransmitted,
        )


@dataclass(frozen=True, slots=True)
class RuntimeMetrics:
    """Unified kernel-level metrics for one run of any engine."""

    transport: TransportStats = field(default_factory=TransportStats)
    shuffle: ShuffleStats = field(default_factory=ShuffleStats)
    messages_faulted: int = 0
    usage: ClusterUsage | None = None

    @property
    def recovery_actions(self) -> int:
        """Total engine-side reactions to faults across both seams."""
        return (
            self.transport.retries
            + self.transport.fallbacks
            + self.shuffle.retransmits
        )

    @property
    def perturbed(self) -> bool:
        """Whether the fault seam visibly touched this run."""
        return self.messages_faulted > 0 or self.recovery_actions > 0


def transport_stats(transports: Iterable[Transport]) -> TransportStats:
    """Sum the counters of many transports (one per compute node)."""
    total = TransportStats()
    for transport in transports:
        total = total + transport.stats()
    return total


def shuffle_stats(channels: Iterable[ShuffleChannel]) -> ShuffleStats:
    """Sum the counters of many shuffle channels."""
    total = ShuffleStats()
    for channel in channels:
        total = total + ShuffleStats(
            sends=channel.sends,
            retransmits=channel.retransmits,
            duplicates=channel.duplicates,
            bytes_retransmitted=channel.bytes_retransmitted,
        )
    return total


def collect_runtime_metrics(
    cluster: Cluster | None = None,
    transports: Iterable[Transport] = (),
    channels: Iterable[ShuffleChannel] = (),
    injector=None,
    registry: MetricsRegistry | None = None,
) -> RuntimeMetrics:
    """Merge every kernel-level counter source into one snapshot.

    ``injector`` is duck-typed on ``messages_faulted`` (the
    :class:`repro.faults.FaultInjector` attribute) so the metrics layer
    stays import-free of the faults package.  With a ``registry``, the
    snapshot is also published into the obs pipeline.
    """
    metrics = RuntimeMetrics(
        transport=transport_stats(transports),
        shuffle=shuffle_stats(channels),
        messages_faulted=(
            getattr(injector, "messages_faulted", 0) if injector else 0
        ),
        usage=collect_usage(
            cluster, registry=registry
        ) if cluster is not None else None,
    )
    if registry is not None:
        publish_runtime_metrics(metrics, registry)
    return metrics


def publish_runtime_metrics(
    metrics: RuntimeMetrics, registry: MetricsRegistry
) -> None:
    """Write one kernel snapshot into ``registry``.

    Usage gauges are published separately by
    :func:`repro.obs.usage.collect_usage`; this covers the transport,
    shuffle and injector families.
    """
    t = metrics.transport
    registry.counter("transport.requests_sent").inc(t.requests_sent)
    registry.counter("transport.timeouts").inc(t.timeouts)
    registry.counter("transport.retries").inc(t.retries)
    registry.counter("transport.fallbacks").inc(t.fallbacks)
    registry.counter("transport.duplicate_responses").inc(t.duplicate_responses)
    registry.counter("transport.hedges_issued").inc(t.hedges_issued)
    registry.counter("transport.hedges_won").inc(t.hedges_won)
    registry.counter("transport.hedges_lost").inc(t.hedges_lost)
    registry.counter("transport.failovers").inc(t.failovers)
    for latency in t.latencies:
        registry.histogram("transport.request_seconds").observe(latency)
    s = metrics.shuffle
    registry.counter("shuffle.sends").inc(s.sends)
    registry.counter("shuffle.retransmits").inc(s.retransmits)
    registry.counter("shuffle.duplicates").inc(s.duplicates)
    registry.counter("shuffle.bytes_retransmitted").inc(s.bytes_retransmitted)
    registry.counter("faults.messages_faulted").inc(metrics.messages_faulted)
