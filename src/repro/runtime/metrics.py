"""One metrics pipeline for every engine on the runtime kernel.

Before the kernel, each engine aggregated its own counters its own way
(and three of the four had no fault counters at all, because they had
no fault handling).  Now every engine runs on
:class:`~repro.runtime.transport.Transport` /
:class:`~repro.runtime.transport.ShuffleChannel`, and this module is
the single aggregation point: request/shuffle counters, injector
counters, and cluster resource usage, merged into one
:class:`RuntimeMetrics` snapshot.  The event-level view stays in
:class:`repro.metrics.trace.FaultTrace`, which both the injector and
the transports feed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.metrics.collector import ClusterUsage, collect_usage
from repro.runtime.transport import ShuffleChannel, Transport, TransportStats
from repro.sim.cluster import Cluster


@dataclass(frozen=True)
class ShuffleStats:
    """Counters of one-way shuffle traffic (see :class:`ShuffleChannel`)."""

    sends: int = 0
    retransmits: int = 0
    duplicates: int = 0
    bytes_retransmitted: float = 0.0

    def __add__(self, other: "ShuffleStats") -> "ShuffleStats":
        return ShuffleStats(
            sends=self.sends + other.sends,
            retransmits=self.retransmits + other.retransmits,
            duplicates=self.duplicates + other.duplicates,
            bytes_retransmitted=self.bytes_retransmitted + other.bytes_retransmitted,
        )


@dataclass(frozen=True)
class RuntimeMetrics:
    """Unified kernel-level metrics for one run of any engine."""

    transport: TransportStats = field(default_factory=TransportStats)
    shuffle: ShuffleStats = field(default_factory=ShuffleStats)
    messages_faulted: int = 0
    usage: ClusterUsage | None = None

    @property
    def recovery_actions(self) -> int:
        """Total engine-side reactions to faults across both seams."""
        return (
            self.transport.retries
            + self.transport.fallbacks
            + self.shuffle.retransmits
        )

    @property
    def perturbed(self) -> bool:
        """Whether the fault seam visibly touched this run."""
        return self.messages_faulted > 0 or self.recovery_actions > 0


def transport_stats(transports: Iterable[Transport]) -> TransportStats:
    """Sum the counters of many transports (one per compute node)."""
    total = TransportStats()
    for transport in transports:
        total = total + transport.stats()
    return total


def shuffle_stats(channels: Iterable[ShuffleChannel]) -> ShuffleStats:
    """Sum the counters of many shuffle channels."""
    total = ShuffleStats()
    for channel in channels:
        total = total + ShuffleStats(
            sends=channel.sends,
            retransmits=channel.retransmits,
            duplicates=channel.duplicates,
            bytes_retransmitted=channel.bytes_retransmitted,
        )
    return total


def collect_runtime_metrics(
    cluster: Cluster | None = None,
    transports: Iterable[Transport] = (),
    channels: Iterable[ShuffleChannel] = (),
    injector=None,
) -> RuntimeMetrics:
    """Merge every kernel-level counter source into one snapshot.

    ``injector`` is duck-typed on ``messages_faulted`` (the
    :class:`repro.faults.FaultInjector` attribute) so the metrics layer
    stays import-free of the faults package.
    """
    return RuntimeMetrics(
        transport=transport_stats(transports),
        shuffle=shuffle_stats(channels),
        messages_faulted=(
            getattr(injector, "messages_faulted", 0) if injector else 0
        ),
        usage=collect_usage(cluster) if cluster is not None else None,
    )
