"""Cluster usage, skew and fault summaries, published to the registry.

This module absorbed ``repro.metrics.collector`` (deleted): the same
:class:`ClusterUsage` / :class:`FaultStats` value types, but every
collection call now also publishes into a :class:`MetricsRegistry`, so
per-node utilization and fault counters flow through the one pipeline
the run report and benchmark hooks read.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.obs.registry import MetricsRegistry, ambient_registry
from repro.sim.cluster import Cluster


@dataclass(frozen=True)
class ClusterUsage:
    """Aggregate resource usage over one simulation run."""

    makespan: float
    cpu_busy: list[float]
    disk_busy: list[float]
    bytes_moved: float

    def cpu_utilization(self, node: int) -> float:
        """CPU busy fraction of ``node`` over the makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.cpu_busy[node] / self.makespan

    def disk_utilization(self, node: int) -> float:
        """Disk busy fraction of ``node`` over the makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.disk_busy[node] / self.makespan

    @property
    def cpu_skew(self) -> float:
        """Max-over-mean CPU busy time across nodes (1.0 = balanced)."""
        return skew_ratio(self.cpu_busy)

    @property
    def disk_skew(self) -> float:
        """Max-over-mean disk busy time across nodes."""
        return skew_ratio(self.disk_busy)


def skew_ratio(values: list[float]) -> float:
    """Max over mean; 1.0 means perfectly balanced, higher is skewed."""
    if not values:
        return 1.0
    mean = sum(values) / len(values)
    if mean == 0:
        return 1.0
    return max(values) / mean


def collect_usage(
    cluster: Cluster, registry: MetricsRegistry | None = None
) -> ClusterUsage:
    """Snapshot per-node busy times and network volume.

    With a ``registry``, the snapshot is also published as ``usage.*``
    gauges (totals and per-node).
    """
    usage = ClusterUsage(
        makespan=cluster.makespan(),
        cpu_busy=[node.cpu.stats().busy_time for node in cluster.nodes],
        disk_busy=[node.disk.stats().busy_time for node in cluster.nodes],
        bytes_moved=cluster.network.bytes_moved,
    )
    if registry is not None:
        publish_usage(usage, registry)
    return usage


def publish_usage(usage: ClusterUsage, registry: MetricsRegistry) -> None:
    """Write one usage snapshot into ``registry`` as ``usage.*`` gauges."""
    registry.gauge("usage.makespan").set(usage.makespan)
    registry.gauge("usage.bytes_moved").set(usage.bytes_moved)
    registry.gauge("usage.cpu_skew").set(usage.cpu_skew)
    registry.gauge("usage.disk_skew").set(usage.disk_skew)
    for node, busy in enumerate(usage.cpu_busy):
        registry.gauge(f"usage.cpu_busy.{node}").set(busy)
    for node, busy in enumerate(usage.disk_busy):
        registry.gauge(f"usage.disk_busy.{node}").set(busy)


@dataclass(frozen=True)
class FaultStats:
    """Aggregate fault and fault-handling counters for one job run.

    Injection side (what went wrong) comes from the
    :class:`repro.faults.FaultInjector`; reaction side (how the engine
    coped) from the compute-node runtimes and data-node servers.
    """

    messages_dropped: int = 0
    messages_duplicated: int = 0
    messages_delayed: int = 0
    crash_drops: int = 0
    timeouts: int = 0
    retries: int = 0
    fallbacks: int = 0
    duplicate_responses: int = 0
    duplicate_requests: int = 0
    retry_seconds_charged: float = 0.0

    @property
    def messages_faulted(self) -> int:
        """Messages the injector interfered with."""
        return (
            self.messages_dropped
            + self.messages_duplicated
            + self.messages_delayed
            + self.crash_drops
        )

    @property
    def recovery_actions(self) -> int:
        """Engine-side reactions (retries + fallbacks)."""
        return self.retries + self.fallbacks


def collect_fault_stats(job, registry: MetricsRegistry | None = None) -> FaultStats:
    """Aggregate fault counters from a finished :class:`JoinJob`.

    Duck-typed on the job to keep the metrics layer import-free of the
    engine; works with any object exposing ``runtimes``, ``servers``
    and (optionally) ``injector``.  With a ``registry``, the stats are
    also published as ``faults.*`` counters.
    """
    timeouts = retries = fallbacks = dup_responses = 0
    retry_seconds = 0.0
    for runtime in getattr(job, "runtimes", {}).values():
        timeouts += runtime.timeouts
        retries += runtime.retries
        fallbacks += runtime.fallbacks
        dup_responses += runtime.duplicate_responses
        retry_seconds += runtime.cost_model.retry_seconds_charged
    dup_requests = sum(
        server.duplicate_requests
        for server in getattr(job, "servers", {}).values()
    )
    injector = getattr(job, "injector", None)
    stats = FaultStats(
        messages_dropped=injector.messages_dropped if injector else 0,
        messages_duplicated=injector.messages_duplicated if injector else 0,
        messages_delayed=injector.messages_delayed if injector else 0,
        crash_drops=injector.crash_drops if injector else 0,
        timeouts=timeouts,
        retries=retries,
        fallbacks=fallbacks,
        duplicate_responses=dup_responses,
        duplicate_requests=dup_requests,
        retry_seconds_charged=retry_seconds,
    )
    if registry is not None:
        publish_fault_stats(stats, registry)
    return stats


def publish_fault_stats(stats: FaultStats, registry: MetricsRegistry) -> None:
    """Write one fault snapshot into ``registry`` as ``faults.*`` counters."""
    for field in fields(stats):
        registry.counter(f"faults.{field.name}").inc(getattr(stats, field.name))


def publish_job_result(result, registry: MetricsRegistry | None = None) -> None:
    """Publish one finished job's counters into the metrics pipeline.

    Duck-typed on :class:`repro.engine.job.JobResult` so the obs layer
    stays import-free of the engine.  Called by ``JoinJob._collect``
    with no explicit registry, which lands in :func:`ambient_registry`
    — the hook the benchmark JSON exporter reads.
    """
    reg = registry if registry is not None else ambient_registry()
    reg.counter("jobs.runs").inc()
    reg.counter("jobs.tuples").inc(result.n_tuples)
    reg.counter("jobs.udfs_at_data_nodes").inc(result.udfs_at_data_nodes)
    reg.counter("jobs.udfs_at_compute_nodes").inc(result.udfs_at_compute_nodes)
    reg.counter("routing.compute_requests").inc(result.compute_requests)
    reg.counter("routing.data_requests").inc(result.data_requests)
    reg.counter("cache.memory_hits").inc(result.cache_memory_hits)
    reg.counter("cache.disk_hits").inc(result.cache_disk_hits)
    reg.counter("faults.timeouts").inc(result.timeouts)
    reg.counter("faults.retries").inc(result.retries)
    reg.counter("faults.fallbacks").inc(result.fallbacks)
    reg.counter("faults.messages_faulted").inc(result.messages_faulted)
    reg.histogram("jobs.makespan").observe(result.makespan)
    reg.histogram("jobs.bytes_moved").observe(result.bytes_moved)
