"""Exporters: how one run's observations leave the process.

Three consumers, three formats:

* :func:`write_trace_jsonl` — the span tree and events as JSON Lines,
  one record per line, for offline analysis of *why* a key routed the
  way it did.
* :class:`RunReport` / :func:`render_run_report` — a human-readable
  markdown report (per-node utilization, skew ratios, routing-decision
  breakdown, fault counters) returned by ``repro.api.run_join``.
* :func:`write_bench_json` — the benchmark hook: attaches a registry
  snapshot and rendered report to every ``BENCH_*.json`` so perf
  numbers always travel with the observations that explain them.

The ``metrics`` field of :class:`RunReport` is deliberately untyped
(the concrete object is :class:`repro.runtime.metrics.RuntimeMetrics`);
``repro.obs`` sits below the runtime layer and must not import it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer


@dataclass(frozen=True)
class ObsOptions:
    """Observability knobs for one run (part of ``RunConfig``)."""

    #: Record a hierarchical span trace (off by default: tracing is
    #: cheap but not free, and most runs only need the registry).
    tracing: bool = False
    #: Where to dump the trace as JSONL after the run (implies nothing
    #: about ``tracing`` — no trace recorded means nothing written).
    trace_path: str | Path | None = None
    #: Render the markdown report eagerly (it is always renderable
    #: later via :meth:`RunReport.render`).
    report: bool = True


@dataclass(frozen=True)
class RunReport:
    """Everything one ``repro.api.run_join`` call produced.

    Carries the engine-native result object, the real join outputs,
    the kernel metrics snapshot, and (when tracing was on) the tracer
    itself — plus enough summary fields that most callers never need
    to look deeper.
    """

    engine: str
    backend: str
    strategy: str
    n_tuples: int
    #: Simulated makespan (sim backend) or wall-clock seconds (local).
    makespan: float
    outputs: dict[int, Any] = field(repr=False, default_factory=dict)
    #: Engine-native result (e.g. ``JobResult``), untyped by design.
    result: Any = field(repr=False, default=None)
    #: Kernel-level ``RuntimeMetrics`` (untyped: obs must not import
    #: the runtime layer).
    metrics: Any = field(repr=False, default=None)
    #: ``MetricsRegistry.snapshot()`` taken at the end of the run.
    snapshot: dict[str, Any] = field(repr=False, default_factory=dict)
    tracer: Tracer | None = field(repr=False, default=None)
    #: Where the trace JSONL was written, if it was.
    trace_path: str | None = None

    @property
    def throughput(self) -> float:
        """Input tuples processed per second."""
        if self.makespan <= 0:
            return 0.0
        return self.n_tuples / self.makespan

    def render(self) -> str:
        """The markdown run report."""
        return render_run_report(self)


# ----------------------------------------------------------------------
# Trace export
# ----------------------------------------------------------------------
def trace_records(tracer: Tracer) -> list[dict[str, Any]]:
    """The trace as JSON-serializable records (spans, then events)."""
    records: list[dict[str, Any]] = []
    for span in tracer.spans:
        records.append(
            {
                "type": "span",
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "start": span.start,
                "end": span.end,
                "status": span.status,
                "attrs": span.attrs,
            }
        )
    for event in tracer.events:
        records.append(
            {
                "type": "event",
                "name": event.name,
                "time": event.time,
                "parent_id": event.parent_id,
                "attrs": event.attrs,
            }
        )
    return records


def write_trace_jsonl(tracer: Tracer, path: str | Path) -> Path:
    """Dump the trace to ``path`` as JSON Lines; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        for record in trace_records(tracer):
            handle.write(json.dumps(record, default=str) + "\n")
    return target


# ----------------------------------------------------------------------
# Run report
# ----------------------------------------------------------------------
def render_run_report(report: RunReport) -> str:
    """Render one run as a markdown report."""
    lines = [
        f"# Run report: {report.engine} ({report.backend})",
        "",
        f"- strategy: {report.strategy}",
        f"- tuples: {report.n_tuples}",
        f"- makespan: {report.makespan:.4f} s",
        f"- throughput: {report.throughput:.1f} tuples/s",
    ]
    counters = report.snapshot.get("counters", {})
    usage = getattr(report.metrics, "usage", None)
    if usage is not None:
        lines += ["", "## Per-node utilization", ""]
        lines.append("| node | cpu busy (s) | cpu util | disk busy (s) | disk util |")
        lines.append("|---:|---:|---:|---:|---:|")
        for node in range(len(usage.cpu_busy)):
            lines.append(
                f"| {node} | {usage.cpu_busy[node]:.4f} "
                f"| {usage.cpu_utilization(node):.1%} "
                f"| {usage.disk_busy[node]:.4f} "
                f"| {usage.disk_utilization(node):.1%} |"
            )
        lines += [
            "",
            f"- bytes moved: {usage.bytes_moved:.0f}",
            f"- cpu skew (max/mean): {usage.cpu_skew:.2f}",
            f"- disk skew (max/mean): {usage.disk_skew:.2f}",
        ]
    routing = _section_counters(counters, ("routing.", "cache.", "jobs.udfs"))
    if report.tracer is not None and report.tracer.enabled:
        for route, count in sorted(report.tracer.route_mix().items()):
            routing[f"route.{route}"] = count
    if routing:
        lines += ["", "## Routing decisions", ""]
        lines += [f"- {name}: {value:g}" for name, value in routing.items()]
    faults = {
        name: value
        for name, value in counters.items()
        if name.startswith("faults.") and value
    }
    if faults:
        lines += ["", "## Faults", ""]
        lines += [f"- {name}: {value:g}" for name, value in sorted(faults.items())]
    kernel = _section_counters(counters, ("transport.", "shuffle."))
    if kernel:
        lines += ["", "## Kernel", ""]
        lines += [f"- {name}: {value:g}" for name, value in kernel.items()]
    resilience = {
        name: value
        for name, value in counters.items()
        if name.startswith("resilience.") and value
    }
    if resilience:
        lines += ["", "## Resilience", ""]
        lines += [
            f"- {name}: {value:g}"
            for name, value in sorted(resilience.items())
        ]
    # Per-tenant accounting spans counters (volumes) and gauges
    # (attainment / percentiles), so merge both metric kinds here.
    gauges = report.snapshot.get("gauges", {})
    tenancy = {
        name: value
        for source in (counters, gauges)
        for name, value in source.items()
        if name.startswith("tenancy.") and value
    }
    if tenancy:
        lines += ["", "## Tenancy", ""]
        lines += [
            f"- {name}: {value:g}"
            for name, value in sorted(tenancy.items())
        ]
    if report.tracer is not None and report.tracer.enabled:
        lines += ["", "## Trace", ""]
        by_name: dict[str, int] = {}
        for span in report.tracer.spans:
            by_name[span.name] = by_name.get(span.name, 0) + 1
        lines.append(
            f"- {len(report.tracer.spans)} spans, "
            f"{len(report.tracer.events)} events"
        )
        lines += [
            f"- spans[{name}]: {count}" for name, count in sorted(by_name.items())
        ]
        if report.trace_path is not None:
            lines.append(f"- trace written to {report.trace_path}")
    return "\n".join(lines) + "\n"


def _section_counters(
    counters: dict[str, float], prefixes: tuple[str, ...]
) -> dict[str, float]:
    return {
        name: value
        for name, value in sorted(counters.items())
        if value and any(name.startswith(p) for p in prefixes)
    }


# ----------------------------------------------------------------------
# Benchmark hook
# ----------------------------------------------------------------------
def bench_payload(
    name: str,
    registry: MetricsRegistry,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """The JSON body attached to one ``BENCH_<name>.json``."""
    payload: dict[str, Any] = {
        "bench": name,
        "metrics": registry.snapshot(),
    }
    if extra:
        payload.update(extra)
    return payload


def write_bench_json(
    directory: str | Path,
    name: str,
    registry: MetricsRegistry,
    extra: dict[str, Any] | None = None,
) -> Path:
    """Write ``BENCH_<name>.json`` carrying the registry snapshot."""
    target = Path(directory) / f"BENCH_{name}.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(bench_payload(name, registry, extra), indent=2, default=str)
        + "\n",
        encoding="utf-8",
    )
    return target
