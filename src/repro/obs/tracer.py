"""Hierarchical span tracer: the event-level view of one run.

The paper's contribution is a *runtime* decision procedure, so the
interesting questions are trajectories, not totals: why did this key
route compute-side, which request paid three retries, where did the
fallback land.  A :class:`Tracer` records that as a tree of **spans**
(``job → batch → request → retry attempt``) plus point **events**
(routing decisions, injected faults, timeouts) attached to spans.

Two invariants keep the tracer safe to thread through every engine:

* **Near-zero overhead when disabled.**  Every call site guards with a
  single attribute check (``if tracer.enabled:``) against the shared
  :data:`NO_TRACER` singleton, so an untraced run pays one boolean
  load per site and allocates nothing.
* **Observation only.**  Recording never touches the simulator — no
  events scheduled, no resources acquired, no RNG draws — so enabling
  tracing cannot change a run's outputs or timings (asserted by
  ``tests/test_obs.py``).

Timestamps are whatever clock the call site lives in: simulated
seconds inside the discrete-event engines, wall-clock offsets in
``LocalBackend``.  One run sticks to one clock.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterator


class Span:
    """One timed node in the trace tree."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "status", "attrs")

    def __init__(
        self,
        span_id: str,
        parent_id: str | None,
        name: str,
        start: float,
        attrs: dict[str, Any],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: float | None = None
        self.status: str | None = None
        self.attrs = attrs

    @property
    def finished(self) -> bool:
        """Whether :meth:`Tracer.end` has been called on this span."""
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span length (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"[{self.start:.4f}, {self.end}], status={self.status})"
        )


class SpanEvent:
    """One instantaneous occurrence, optionally attached to a span."""

    __slots__ = ("name", "time", "parent_id", "attrs")

    def __init__(
        self, name: str, time: float, parent_id: str | None, attrs: dict[str, Any]
    ) -> None:
        self.name = name
        self.time = time
        self.parent_id = parent_id
        self.attrs = attrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanEvent({self.name!r}, t={self.time:.4f}, parent={self.parent_id})"


class Tracer:
    """Recorder of spans and events for one run.

    Spans are created with :meth:`start` (explicit parent — the engines
    are callback-driven, so there is no call stack to infer nesting
    from) and closed with :meth:`end`.  The tracer never prunes: tests
    and exporters read :attr:`spans` / :attr:`events` directly.
    """

    #: Call sites guard on this before building attribute dicts.
    enabled = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.events: list[SpanEvent] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def start(
        self,
        name: str,
        parent: "Span | str | None" = None,
        at: float = 0.0,
        **attrs: Any,
    ) -> Span:
        """Open a span named ``name`` at time ``at`` under ``parent``."""
        self._seq += 1
        span = Span(
            span_id=f"s{self._seq}",
            parent_id=_span_id(parent),
            name=name,
            start=at,
            attrs=attrs,
        )
        self.spans.append(span)
        return span

    def end(
        self, span: Span, at: float = 0.0, status: str = "ok", **attrs: Any
    ) -> None:
        """Close ``span`` at time ``at`` with a terminal ``status``."""
        span.end = at
        span.status = status
        if attrs:
            span.attrs.update(attrs)

    def event(
        self,
        name: str,
        parent: "Span | str | None" = None,
        at: float = 0.0,
        **attrs: Any,
    ) -> None:
        """Record one point event at time ``at`` under ``parent``."""
        self.events.append(SpanEvent(name, at, _span_id(parent), attrs))

    # ------------------------------------------------------------------
    # Views (used by exporters and tests)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def find(self, name: str) -> list[Span]:
        """All spans named ``name``, in creation order."""
        return [s for s in self.spans if s.name == name]

    def span_map(self) -> dict[str, Span]:
        """``span_id -> Span`` for parent-link checks."""
        return {s.span_id: s for s in self.spans}

    def children(self, span: Span | str) -> list[Span]:
        """Direct child spans of ``span``."""
        sid = _span_id(span)
        return [s for s in self.spans if s.parent_id == sid]

    def events_named(self, name: str) -> list[SpanEvent]:
        """All events named ``name``, in occurrence order."""
        return [e for e in self.events if e.name == name]

    def route_mix(self) -> dict[str, int]:
        """Routing-decision breakdown from the recorded route events."""
        return dict(
            Counter(e.attrs["route"] for e in self.events if e.name == "route")
        )

    def orphans(self) -> list[Span]:
        """Spans whose parent id does not resolve (should be empty)."""
        known = {s.span_id for s in self.spans}
        return [
            s for s in self.spans
            if s.parent_id is not None and s.parent_id not in known
        ]

    def unfinished(self) -> list[Span]:
        """Spans never ended (should be empty after a completed run)."""
        return [s for s in self.spans if not s.finished]

    def walk(self, span: Span) -> Iterator[Span]:
        """Depth-first iteration over ``span`` and its descendants."""
        yield span
        for child in self.children(span):
            yield from self.walk(child)


class NullTracer(Tracer):
    """The disabled tracer: every method is a no-op.

    A single shared instance (:data:`NO_TRACER`) is the default
    everywhere, so the hot paths pay one ``tracer.enabled`` check and
    nothing else.  ``start`` hands back one preallocated dummy span so
    even an unguarded call site cannot crash.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._dummy = Span("s0", None, "noop", 0.0, {})

    def start(self, name, parent=None, at=0.0, **attrs):  # type: ignore[override]
        return self._dummy

    def end(self, span, at=0.0, status="ok", **attrs):  # type: ignore[override]
        return None

    def event(self, name, parent=None, at=0.0, **attrs):  # type: ignore[override]
        return None


#: Shared disabled tracer — the default for every ``tracer`` parameter.
NO_TRACER = NullTracer()


def _span_id(parent: Span | str | None) -> str | None:
    if parent is None:
        return None
    if isinstance(parent, Span):
        return parent.span_id
    return parent
