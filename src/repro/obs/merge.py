"""Merging remote trace/metric snapshots into a local run's record.

The cluster backend (:mod:`repro.cluster`) runs real worker processes,
each with its own :class:`~repro.obs.tracer.Tracer` and counter map.
At collection time the driver pulls a serialized snapshot from every
worker (the ``snapshot`` RPC ships :func:`repro.obs.exporters
.trace_records` output) and merges it here so the caller sees **one**
trace tree and **one** registry, exactly as on the simulated backends:

* :func:`merge_trace_records` replays remote span/event records into
  the local tracer.  Remote span ids are local to the worker that
  minted them (every tracer counts ``s1, s2, ...``), so each record
  gets a fresh local id; parent links are remapped through the same
  table, and remote roots are re-parented under the driver's job span
  — the worker subtree hangs off the run that caused it.
* :func:`merge_counters` sums remote counters into the local registry
  under a prefix (``cluster.``), keeping worker-local names
  (``serve.run_batch``) distinct from the driver's own families.

Both functions are pure accumulation: they never mutate the snapshots
and are safe to call once per worker.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Span, Tracer


def merge_trace_records(
    tracer: Tracer,
    records: Iterable[Mapping[str, Any]],
    *,
    parent: Span | str | None = None,
    attrs: Mapping[str, Any] | None = None,
) -> dict[str, Span]:
    """Replay remote ``trace_records`` into ``tracer``; returns id map.

    ``parent`` becomes the parent of every remote *root* span and of
    every parentless event.  ``attrs`` (e.g. ``{"worker": "c0"}``) is
    stamped onto every merged span and event so provenance survives
    the merge.  Records whose parent id is unknown (a worker shipped a
    partial trace) fall back to ``parent`` rather than dangling — the
    merged tree never has orphans.

    Returns the remote-id -> local-span mapping so callers can attach
    follow-up records to spans merged earlier.
    """
    extra = dict(attrs) if attrs else {}
    id_map: dict[str, Span] = {}
    for record in records:
        kind = record.get("type")
        if kind == "span":
            remote_parent = record.get("parent_id")
            local_parent: Span | str | None
            if remote_parent is None:
                local_parent = parent
            else:
                local_parent = id_map.get(str(remote_parent), parent)
            span = tracer.start(
                str(record.get("name", "span")),
                parent=local_parent,
                at=float(record.get("start") or 0.0),
                **{**dict(record.get("attrs") or {}), **extra},
            )
            end = record.get("end")
            if end is not None:
                tracer.end(
                    span, at=float(end), status=record.get("status") or "ok"
                )
            id_map[str(record.get("span_id"))] = span
        elif kind == "event":
            remote_parent = record.get("parent_id")
            if remote_parent is None:
                local_parent = parent
            else:
                local_parent = id_map.get(str(remote_parent), parent)
            tracer.event(
                str(record.get("name", "event")),
                parent=local_parent,
                at=float(record.get("time") or 0.0),
                **{**dict(record.get("attrs") or {}), **extra},
            )
    return id_map


def merge_counters(
    registry: MetricsRegistry,
    counters: Mapping[str, float],
    *,
    prefix: str = "",
) -> None:
    """Sum a remote counter map into ``registry`` under ``prefix``.

    Counters are monotone, so summing across workers (and across calls
    for the same worker's successive generations) is the only correct
    combination; negative remote values are rejected by the counter
    itself.
    """
    for name, value in counters.items():
        if value:
            registry.counter(f"{prefix}{name}").inc(float(value))


__all__ = ["merge_counters", "merge_trace_records"]
