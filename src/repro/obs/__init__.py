"""repro.obs — the unified observability layer.

One subsystem, three parts, threaded through the runtime-kernel seams:

* :mod:`repro.obs.tracer` — hierarchical span tracing
  (``job → batch → request → attempt``) with a no-op singleton
  (:data:`NO_TRACER`) so disabled tracing costs one attribute check.
* :mod:`repro.obs.registry` — named counters/gauges/histograms; every
  engine emits into one :class:`MetricsRegistry` pipeline.
* :mod:`repro.obs.exporters` — JSONL trace dump, markdown run report,
  and the ``BENCH_*.json`` attachment hook.
* :mod:`repro.obs.merge` — replaying remote worker snapshots (spans +
  counters shipped over IPC by :mod:`repro.cluster`) into the local
  tracer/registry.

:mod:`repro.obs.usage` holds the cluster-usage and fault-stats
summaries absorbed from the deleted ``repro.metrics.collector``.
"""

from repro.obs.exporters import (
    ObsOptions,
    RunReport,
    bench_payload,
    render_run_report,
    trace_records,
    write_bench_json,
    write_trace_jsonl,
)
from repro.obs.merge import merge_counters, merge_trace_records
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ambient_registry,
)
from repro.obs.tracer import NO_TRACER, NullTracer, Span, SpanEvent, Tracer
from repro.obs.usage import (
    ClusterUsage,
    FaultStats,
    collect_fault_stats,
    collect_usage,
    publish_fault_stats,
    publish_job_result,
    publish_usage,
    skew_ratio,
)

__all__ = [
    "NO_TRACER",
    "ClusterUsage",
    "Counter",
    "FaultStats",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "ObsOptions",
    "RunReport",
    "Span",
    "SpanEvent",
    "Tracer",
    "ambient_registry",
    "bench_payload",
    "collect_fault_stats",
    "collect_usage",
    "merge_counters",
    "merge_trace_records",
    "publish_fault_stats",
    "publish_job_result",
    "publish_usage",
    "render_run_report",
    "skew_ratio",
    "trace_records",
    "write_bench_json",
    "write_trace_jsonl",
]
