"""Metrics registry: named counters, gauges and histograms.

One pipeline for every number the system produces.  Engines (through
``repro.runtime.metrics``), the fault layer and the job drivers all
publish into a :class:`MetricsRegistry`; reports and the benchmark
JSON hook read a :meth:`~MetricsRegistry.snapshot` back out.  This
replaces the pre-obs split where ``repro.metrics.collector`` and
``repro.runtime.RuntimeMetrics`` each kept their own partial copy of
the accounting.

Naming convention: dotted lowercase paths, one family per subsystem —
``transport.*`` (request/response kernel), ``shuffle.*`` (one-way
kernel), ``faults.*`` (injector + reactions), ``usage.*`` (cluster
resources), ``routing.*`` (decision mix), ``cache.*``, ``jobs.*``.

A process-wide :func:`ambient_registry` exists so call sites that have
no registry threaded to them (e.g. a bare ``JoinJob.run`` inside an
experiment harness) still emit into the pipeline; per-run registries
passed explicitly take no input from it.
"""

from __future__ import annotations

from typing import Any


class Counter:
    """Monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """Last-write-wins named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary of a named distribution (no buckets kept)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Get-or-create store of named metrics."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Access (creation is implicit, like every metrics facade)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def value(self, name: str, default: float = 0.0) -> float:
        """Current value of a counter or gauge (0.0 when absent)."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        return default

    def counters_matching(self, prefix: str) -> dict[str, float]:
        """``name -> value`` for every counter under ``prefix``."""
        return {
            name: c.value
            for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time copy of everything, JSON-serializable."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every metric (used between benchmark runs)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


_AMBIENT = MetricsRegistry()


def ambient_registry() -> MetricsRegistry:
    """The process-wide registry fed by un-threaded call sites."""
    return _AMBIENT
