"""Per-run resilience configuration.

One frozen value gates the whole subsystem: with ``enabled=False`` (the
default, and :meth:`ResilienceOptions.off`) *nothing* is wired — no
heartbeats, no detector, no hedge timers, no admission queues — and a
run is bit-identical to a pre-resilience build.  The differential test
in ``tests/test_resilience.py`` enforces that, so the feature is
provably opt-in.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any


@dataclass(frozen=True)
class ResilienceOptions:
    """Knobs for detection, recovery, hedging and admission control."""

    #: Master switch; ``False`` wires nothing at all.
    enabled: bool = False

    # -- failure detection ------------------------------------------------
    #: Run the heartbeat channel + phi-accrual detector (and, with
    #: :attr:`recovery`, region failover on confirmed deaths).
    detection: bool = True
    #: Seconds between heartbeats from each data node to the monitor.
    heartbeat_interval: float = 0.05
    #: Phi (missed-interval multiples) at which a node turns SUSPECT.
    suspect_phi: float = 4.0
    #: Phi at which a node is declared DEAD and failover begins.
    dead_phi: float = 8.0

    # -- recovery ---------------------------------------------------------
    #: Reassign a dead node's regions and replay idempotent in-flight
    #: requests; also checkpoint compute-node soft state periodically.
    recovery: bool = True
    #: Seconds between soft-state checkpoints (0 disables them).
    checkpoint_interval: float = 0.5

    # -- hedged requests --------------------------------------------------
    #: Speculatively duplicate straggling requests at the replica.
    hedging: bool = False
    #: Latency quantile after which a request is considered straggling.
    hedge_quantile: float = 0.95
    #: Completed requests observed before hedging arms.
    hedge_warmup: int = 20
    #: Floor on the hedge delay (guards against a degenerate quantile).
    hedge_min_delay: float = 0.005

    # -- admission control ------------------------------------------------
    #: Bound per-data-node in-flight work and park the overflow.
    admission: bool = False
    #: Max admitted-but-unfinished tuples per data node (None = admission
    #: stays off even when :attr:`admission` is True).
    queue_bound: int | None = None
    #: Seconds a parked tuple waits before being shed onto the cheap
    #: route (None = parked tuples only drain on completions).
    shed_deadline: float | None = None

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if not 0 < self.suspect_phi <= self.dead_phi:
            raise ValueError("need 0 < suspect_phi <= dead_phi")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be non-negative")
        if not 0.0 < self.hedge_quantile < 1.0:
            raise ValueError("hedge_quantile must be in (0, 1)")
        if self.hedge_warmup < 1:
            raise ValueError("hedge_warmup must be >= 1")
        if self.queue_bound is not None and self.queue_bound < 1:
            raise ValueError("queue_bound must be >= 1")
        if self.shed_deadline is not None and self.shed_deadline <= 0:
            raise ValueError("shed_deadline must be positive")

    @classmethod
    def off(cls) -> "ResilienceOptions":
        """Explicitly disabled — bit-identical to a pre-resilience run."""
        return cls(enabled=False)

    @classmethod
    def on(cls, **overrides: Any) -> "ResilienceOptions":
        """Enabled with defaults; keyword overrides for any knob."""
        return replace(cls(enabled=True), **overrides)
