"""Admission control: bounded per-data-node queues with load shedding.

Section 5's load balancer models a data node's service time as linear
in its queue length — so an unbounded queue is unbounded latency.  The
controller keeps, per destination data node, a hard bound on admitted-
but-unfinished tuples.  Overflow is *parked* (backpressure to the batch
layer: the tuple simply is not enqueued yet) in FIFO order and admitted
as completions free slots.  A parked tuple that waits past the shed
deadline is *shed*: not dropped — correctness is sacred here — but
degraded onto the cheap route (a raw data fetch, computed locally, per
Section 5's guidance to move work off the overloaded server) and
dispatched outside the bound.

Occupancy is charged at admission and released when the tuple's output
is recorded, so the bound covers the full in-flight lifetime: buffered,
on the wire, queued at the server, and computing.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Callable

from repro.sim.events import Simulator

#: A parked tuple: [dst, tuple_id, payload, live?].
_Token = list


class AdmissionController:
    """Per-data-node admission bound with FIFO parking and shedding."""

    def __init__(
        self,
        sim: Simulator,
        bound: int,
        dispatch: Callable[[int, int, Any], None],
        shed: Callable[[int, int, Any], None],
        deadline: float | None = None,
    ) -> None:
        if bound < 1:
            raise ValueError("bound must be >= 1")
        self.sim = sim
        self.bound = bound
        self.dispatch = dispatch
        self.shed = shed
        self.deadline = deadline
        self._occupancy: dict[int, int] = defaultdict(int)
        self._owner: dict[int, int] = {}
        self._parked: dict[int, deque[_Token]] = defaultdict(deque)
        self.admitted = 0
        self.parked_total = 0
        self.shed_count = 0
        self.peak_inflight = 0

    def occupancy(self, dst: int) -> int:
        return self._occupancy[dst]

    def parked(self, dst: int) -> int:
        return sum(1 for token in self._parked[dst] if token[3])

    def submit(self, dst: int, tuple_id: int, payload: Any) -> bool:
        """Try to admit one tuple bound for ``dst``.

        Returns ``True`` if admitted (the caller dispatches it now);
        ``False`` if parked — the controller will hand it back through
        the ``dispatch`` callback when a slot frees, or through ``shed``
        if the deadline expires first.
        """
        if self._occupancy[dst] < self.bound:
            self._admit(dst, tuple_id)
            return True
        token: _Token = [dst, tuple_id, payload, True]
        self._parked[dst].append(token)
        self.parked_total += 1
        if self.deadline is not None:
            self.sim.schedule_after(
                self.deadline, lambda: self._maybe_shed(token)
            )
        return False

    def release(self, tuple_id: int) -> None:
        """The tuple finished; free its slot and admit the next parked."""
        dst = self._owner.pop(tuple_id, None)
        if dst is None:
            return  # never admitted here (local route, or shed)
        self._occupancy[dst] -= 1
        queue = self._parked[dst]
        while queue:
            token = queue.popleft()
            if not token[3]:
                continue  # already shed; lazily discarded
            token[3] = False
            self._admit(dst, token[1])
            self.dispatch(dst, token[1], token[2])
            break

    def _admit(self, dst: int, tuple_id: int) -> None:
        self._occupancy[dst] += 1
        self.peak_inflight = max(self.peak_inflight, self._occupancy[dst])
        self._owner[tuple_id] = dst
        self.admitted += 1

    def _maybe_shed(self, token: _Token) -> None:
        if not token[3]:
            return  # admitted in the meantime
        token[3] = False
        self.shed_count += 1
        # Shed work runs outside the bound on purpose: it no longer
        # burdens the overloaded server's UDF queue, only its disk.
        self.shed(token[0], token[1], token[2])
