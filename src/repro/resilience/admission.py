"""Admission control: bounded per-data-node queues with load shedding.

Section 5's load balancer models a data node's service time as linear
in its queue length — so an unbounded queue is unbounded latency.  The
controller keeps, per destination data node, a hard bound on admitted-
but-unfinished tuples.  Overflow is *parked* (backpressure to the batch
layer: the tuple simply is not enqueued yet) in FIFO order and admitted
as completions free slots.  A parked tuple that waits past the shed
deadline is *shed*: not dropped — correctness is sacred here — but
degraded onto the cheap route (a raw data fetch, computed locally, per
Section 5's guidance to move work off the overloaded server) and
dispatched outside the bound.

Occupancy is charged at admission and released when the tuple's output
is recorded, so the bound covers the full in-flight lifetime: buffered,
on the wire, queued at the server, and computing.

Two shed causes are accounted separately: ``shed_deadline_expired``
(the parked tuple aged out) and ``shed_queue_full`` (the parked queue
itself hit :attr:`AdmissionController.park_capacity` and the new tuple
was shed on arrival, before ever parking).  ``shed_count`` remains the
sum of both, so pre-existing consumers keep working.

:class:`WeightedFairAdmission` is the multi-tenant extension
(``repro.tenancy``): the single shared parked FIFO becomes one parked
queue per tenant, drained by deficit-first weighted-fair scheduling
with per-tenant quotas, and every shed is charged to the tenant that
over-drove its share — not smeared across the mix.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.sim.events import Simulator

#: A parked tuple: [dst, tuple_id, payload, live?] (the weighted-fair
#: subclass appends a fifth slot carrying the tenant name).
_Token = list


class AdmissionController:
    """Per-data-node admission bound with FIFO parking and shedding."""

    def __init__(
        self,
        sim: Simulator,
        bound: int,
        dispatch: Callable[[int, int, Any], None],
        shed: Callable[[int, int, Any], None],
        deadline: float | None = None,
        park_capacity: int | None = None,
    ) -> None:
        if bound < 1:
            raise ValueError("bound must be >= 1")
        if park_capacity is not None and park_capacity < 0:
            raise ValueError("park_capacity must be non-negative")
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be non-negative")
        self.sim = sim
        self.bound = bound
        self.dispatch = dispatch
        self.shed = shed
        self.deadline = deadline
        #: Max *live* parked tuples per destination; an arrival finding
        #: the queue full is shed immediately (``shed_queue_full``).
        #: ``None`` parks without limit (the pre-tenancy behavior).
        self.park_capacity = park_capacity
        self._occupancy: dict[int, int] = defaultdict(int)
        self._owner: dict[int, int] = {}
        self._parked: dict[int, deque[_Token]] = defaultdict(deque)
        self.admitted = 0
        self.parked_total = 0
        self.shed_count = 0
        self.shed_deadline_expired = 0
        self.shed_queue_full = 0
        self.peak_inflight = 0

    def occupancy(self, dst: int) -> int:
        return self._occupancy[dst]

    def parked(self, dst: int) -> int:
        return sum(1 for token in self._parked[dst] if token[3])

    def submit(self, dst: int, tuple_id: int, payload: Any) -> bool:
        """Try to admit one tuple bound for ``dst``.

        Returns ``True`` if admitted (the caller dispatches it now);
        ``False`` if parked or shed — the controller will hand it back
        through the ``dispatch`` callback when a slot frees, or through
        ``shed`` if the deadline expires (or the parked queue is full)
        first.
        """
        if self._occupancy[dst] < self.bound:
            self._admit(dst, tuple_id)
            return True
        if (
            self.park_capacity is not None
            and self.parked(dst) >= self.park_capacity
        ):
            self.shed_count += 1
            self.shed_queue_full += 1
            self.shed(dst, tuple_id, payload)
            return False
        token: _Token = [dst, tuple_id, payload, True]
        self._park(token)
        return False

    def _park(self, token: _Token) -> None:
        self._parked[token[0]].append(token)
        self.parked_total += 1
        if self.deadline is not None:
            self.sim.schedule_after(
                self.deadline, lambda: self._maybe_shed(token)
            )

    def release(self, tuple_id: int) -> None:
        """The tuple finished; free its slot and admit the next parked."""
        dst = self._owner.pop(tuple_id, None)
        if dst is None:
            return  # never admitted here (local route, or shed)
        self._occupancy[dst] -= 1
        self._admit_next(dst)

    def _admit_next(self, dst: int) -> None:
        queue = self._parked[dst]
        while queue:
            token = queue.popleft()
            if not token[3]:
                continue  # already shed; lazily discarded
            token[3] = False
            self._admit(dst, token[1])
            self.dispatch(dst, token[1], token[2])
            break

    def _admit(self, dst: int, tuple_id: int) -> None:
        self._occupancy[dst] += 1
        self.peak_inflight = max(self.peak_inflight, self._occupancy[dst])
        self._owner[tuple_id] = dst
        self.admitted += 1

    def _maybe_shed(self, token: _Token) -> None:
        if not token[3]:
            return  # admitted in the meantime
        token[3] = False
        self.shed_count += 1
        self.shed_deadline_expired += 1
        # Shed work runs outside the bound on purpose: it no longer
        # burdens the overloaded server's UDF queue, only its disk.
        self.shed(token[0], token[1], token[2])


@dataclass(frozen=True)
class TenantShare:
    """One tenant's claim on the admission bound.

    ``weight`` sets the tenant's proportional share of slots when the
    bound is contended; ``quota`` is a hard in-flight ceiling per
    destination the tenant can never exceed, even when slots are idle
    (``None`` = no ceiling); ``deadline`` overrides the controller's
    default shed deadline for this tenant's parked work — typically the
    tenant's SLO deadline, past which finishing is pointless anyway.
    """

    weight: float = 1.0
    quota: int | None = None
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.quota is not None and self.quota < 1:
            raise ValueError("quota must be >= 1")
        if self.deadline is not None and self.deadline < 0:
            raise ValueError("deadline must be non-negative")


_DEFAULT_SHARE = TenantShare()


class WeightedFairAdmission(AdmissionController):
    """Per-tenant weighted-fair admission with quotas and charged sheds.

    The global bound per destination is unchanged, but the parked
    overflow is kept per tenant and drained deficit-first: a tenant
    running below its guaranteed share (``bound * weight / Σweight``)
    is always served before tenants above theirs; among equally
    entitled tenants the lowest virtual time (stride scheduling —
    admissions advance a tenant's clock by ``1/weight``) wins, with
    the tenant name as the deterministic tie-break.

    The scheme is work-conserving: idle slots go to any tenant with
    parked work (quota permitting), so an under-loaded mix behaves
    exactly like the global controller.  What changes under contention
    is *whose* work waits: an over-quota flash crowd parks behind the
    compliant tenants' guaranteed slots, so its requests are the ones
    that age out — deadline and queue-full sheds are charged to the
    offending tenant (``shed_by_tenant``), not smeared across the mix.
    """

    def __init__(
        self,
        sim: Simulator,
        bound: int,
        dispatch: Callable[[int, int, Any], None],
        shed: Callable[[int, int, Any], None],
        deadline: float | None = None,
        shares: Mapping[str, TenantShare] | None = None,
        tenant_of: Callable[[int], str] | None = None,
        park_capacity: int | None = None,
    ) -> None:
        super().__init__(
            sim, bound, dispatch, shed, deadline=deadline,
            park_capacity=park_capacity,
        )
        self.shares: dict[str, TenantShare] = dict(shares or {})
        self.tenant_of: Callable[[int], str] = (
            tenant_of if tenant_of is not None else (lambda _tid: "default")
        )
        #: In-flight slots per (destination, tenant).
        self._occ_tenant: dict[tuple[int, str], int] = defaultdict(int)
        #: Parked queues per destination per tenant.
        self._queues: dict[int, dict[str, deque[_Token]]] = defaultdict(dict)
        #: Stride-scheduling virtual time per tenant.
        self._vtime: dict[str, float] = defaultdict(float)
        self._tenant_owner: dict[int, str] = {}
        self.admitted_by_tenant: dict[str, int] = defaultdict(int)
        self.parked_by_tenant: dict[str, int] = defaultdict(int)
        self.shed_by_tenant: dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------
    # Share bookkeeping
    # ------------------------------------------------------------------
    def _share(self, tenant: str) -> TenantShare:
        share = self.shares.get(tenant)
        if share is None:
            share = self.shares[tenant] = _DEFAULT_SHARE
        return share

    def _guarantee(self, tenant: str) -> int:
        """Slots per destination this tenant is always entitled to."""
        total = sum(share.weight for share in self.shares.values())
        weight = self._share(tenant).weight
        if total <= 0:
            return self.bound
        return max(1, int(self.bound * weight / total))

    def tenant_occupancy(self, dst: int, tenant: str) -> int:
        return self._occ_tenant[(dst, tenant)]

    def parked(self, dst: int) -> int:
        return sum(
            1
            for queue in self._queues[dst].values()
            for token in queue
            if token[3]
        )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, dst: int, tuple_id: int, payload: Any) -> bool:
        tenant = self.tenant_of(tuple_id)
        share = self._share(tenant)
        occ_t = self._occ_tenant[(dst, tenant)]
        over_quota = share.quota is not None and occ_t >= share.quota
        if not over_quota and self._occupancy[dst] < self.bound:
            # Under its guarantee the tenant is entitled outright; over
            # it, spare slots are only borrowed when no other tenant is
            # waiting (work conservation without starving the parked).
            if occ_t < self._guarantee(tenant) or not self._others_parked(
                dst, tenant
            ):
                self._admit_tenant(dst, tuple_id, tenant)
                return True
        if (
            self.park_capacity is not None
            and self.parked(dst) >= self.park_capacity
        ):
            self.shed_count += 1
            self.shed_queue_full += 1
            self.shed_by_tenant[tenant] += 1
            self.shed(dst, tuple_id, payload)
            return False
        token: _Token = [dst, tuple_id, payload, True, tenant]
        queue = self._queues[dst].get(tenant)
        if queue is None:
            queue = self._queues[dst][tenant] = deque()
        queue.append(token)
        self.parked_total += 1
        self.parked_by_tenant[tenant] += 1
        deadline = share.deadline if share.deadline is not None else self.deadline
        if deadline is not None:
            self.sim.schedule_after(
                deadline, lambda: self._maybe_shed(token)
            )
        return False

    def _others_parked(self, dst: int, tenant: str) -> bool:
        for name, queue in self._queues[dst].items():
            if name == tenant:
                continue
            if any(token[3] for token in queue):
                return True
        return False

    def release(self, tuple_id: int) -> None:
        dst = self._owner.pop(tuple_id, None)
        if dst is None:
            return
        tenant = self._tenant_owner.pop(tuple_id)
        self._occupancy[dst] -= 1
        self._occ_tenant[(dst, tenant)] -= 1
        self._admit_next(dst)

    def _admit_next(self, dst: int) -> None:
        """Weighted-fair pick of the next parked tuple to admit.

        Deficit first (below-guarantee tenants beat above-guarantee
        ones), then lowest virtual time, then tenant name — a total
        order, so the drain sequence is deterministic.
        """
        queues = self._queues[dst]
        best: tuple[tuple[int, float, str], str] | None = None
        for tenant in sorted(queues):
            queue = queues[tenant]
            while queue and not queue[0][3]:
                queue.popleft()  # lazily discard shed tokens
            if not queue:
                continue
            share = self._share(tenant)
            occ_t = self._occ_tenant[(dst, tenant)]
            if share.quota is not None and occ_t >= share.quota:
                continue
            rank = (
                0 if occ_t < self._guarantee(tenant) else 1,
                self._vtime[tenant],
                tenant,
            )
            if best is None or rank < best[0]:
                best = (rank, tenant)
        if best is None:
            return
        token = queues[best[1]].popleft()
        token[3] = False
        self._admit_tenant(dst, token[1], best[1])
        self.dispatch(dst, token[1], token[2])

    def _admit_tenant(self, dst: int, tuple_id: int, tenant: str) -> None:
        self._admit(dst, tuple_id)
        self._occ_tenant[(dst, tenant)] += 1
        self._tenant_owner[tuple_id] = tenant
        self.admitted_by_tenant[tenant] += 1
        self._vtime[tenant] += 1.0 / self._share(tenant).weight

    def _maybe_shed(self, token: _Token) -> None:
        if not token[3]:
            return
        self.shed_by_tenant[token[4]] += 1
        super()._maybe_shed(token)
