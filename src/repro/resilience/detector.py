"""Heartbeat-driven failure detection (phi-accrual style).

Every data node sends a periodic heartbeat datagram to a monitor over
the best-effort :class:`repro.runtime.transport.OnewayChannel`; the
detector tracks, per node, the smoothed inter-arrival mean and scores
silence as ``phi = elapsed / mean`` — how many expected intervals have
gone missing.  Crossing :attr:`suspect_phi` turns a node SUSPECT (a
hint: routing may start avoiding it), crossing :attr:`dead_phi` turns
it DEAD exactly once per down episode (the recovery manager's trigger).
A heartbeat from a SUSPECT or DEAD node clears it back to ALIVE.

This is the accrual structure of Hayashibara et al.'s phi detector with
the normal-tail approximation simplified to a linear miss count — on a
simulated clock with near-constant intervals the distinction is noise,
and the linear form keeps thresholds legible ("dead after ~8 silent
intervals").
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable

from repro.core.smoothing import SmoothedValue


class NodeState(enum.Enum):
    """Detector verdict for one monitored node."""

    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


class FailureDetector:
    """Accrual failure detector over heartbeat arrival times.

    Parameters
    ----------
    nodes:
        Monitored node ids.  All start ALIVE with a synthetic heartbeat
        at t=0, so a node that is down from the start still accrues phi
        and gets detected.
    interval:
        Expected heartbeat period (seeds the smoothed mean).
    suspect_phi, dead_phi:
        Miss-count thresholds for the two transitions.
    on_suspect, on_dead, on_recovered:
        Optional ``(node_id, at)`` callbacks fired on each transition.
    """

    def __init__(
        self,
        nodes: Iterable[int],
        *,
        interval: float,
        suspect_phi: float = 4.0,
        dead_phi: float = 8.0,
        on_suspect: Callable[[int, float], None] | None = None,
        on_dead: Callable[[int, float], None] | None = None,
        on_recovered: Callable[[int, float], None] | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.suspect_phi = suspect_phi
        self.dead_phi = dead_phi
        self.on_suspect = on_suspect
        self.on_dead = on_dead
        self.on_recovered = on_recovered
        self._last: dict[int, float] = {n: 0.0 for n in nodes}
        self._mean: dict[int, SmoothedValue] = {
            n: SmoothedValue(alpha=0.2, initial=interval) for n in self._last
        }
        self._state: dict[int, NodeState] = {
            n: NodeState.ALIVE for n in self._last
        }
        self.heartbeats = 0
        self.suspicions = 0
        self.deaths = 0
        self.recoveries = 0
        #: Seconds of silence before each DEAD verdict.
        self.detection_delays: list[float] = []

    def state(self, node: int) -> NodeState:
        return self._state[node]

    def nodes(self) -> list[int]:
        return sorted(self._last)

    def record_heartbeat(self, node: int, at: float) -> None:
        """One heartbeat arrived from ``node`` at simulated time ``at``."""
        if node not in self._last:
            return
        self.heartbeats += 1
        gap = at - self._last[node]
        if gap > 0:
            # Clamp: the first beat after a long outage would otherwise
            # poison the mean and blind the detector to the next crash.
            self._mean[node].observe(min(gap, self.interval * 4.0))
        self._last[node] = at
        if self._state[node] is not NodeState.ALIVE:
            self._state[node] = NodeState.ALIVE
            self.recoveries += 1
            if self.on_recovered is not None:
                self.on_recovered(node, at)

    def phi(self, node: int, at: float) -> float:
        """Accrued suspicion: silent time in expected-interval units."""
        mean = max(self._mean[node].value_or(self.interval), 1e-9)
        return (at - self._last[node]) / mean

    def sweep(self, at: float) -> list[int]:
        """Re-score every node; returns nodes newly declared DEAD."""
        newly_dead: list[int] = []
        for node in sorted(self._last):
            state = self._state[node]
            if state is NodeState.DEAD:
                continue
            score = self.phi(node, at)
            if score >= self.dead_phi:
                self._state[node] = NodeState.DEAD
                self.deaths += 1
                self.detection_delays.append(at - self._last[node])
                newly_dead.append(node)
                if self.on_dead is not None:
                    self.on_dead(node, at)
            elif score >= self.suspect_phi and state is NodeState.ALIVE:
                self._state[node] = NodeState.SUSPECT
                self.suspicions += 1
                if self.on_suspect is not None:
                    self.on_suspect(node, at)
        return newly_dead
