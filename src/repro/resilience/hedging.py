"""Adaptive hedging policy: when to duplicate a straggling request.

The classic tail-at-scale recipe (Dean & Barroso): after the p-th
latency quantile has elapsed with no response, send a speculative
duplicate to a replica and take whichever answer lands first.  The
quantile is tracked online from the stream of completed-request
latencies — a bounded reservoir of recent samples, plenty at simulation
scale — and the policy stays disarmed until a warmup count of samples
exists, so cold starts never hedge on garbage estimates.

The policy decides *when*; the :class:`repro.runtime.transport.Transport`
decides *how* (same request id, replica target, first-response-wins via
the idempotent pending table).
"""

from __future__ import annotations

import bisect


class HedgePolicy:
    """Streaming-quantile hedge-delay estimator."""

    def __init__(
        self,
        quantile: float = 0.95,
        warmup: int = 20,
        min_delay: float = 0.005,
        window: int = 256,
    ) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if warmup < 1:
            raise ValueError("warmup must be >= 1")
        if window < warmup:
            raise ValueError("window must be >= warmup")
        self.quantile = quantile
        self.warmup = warmup
        self.min_delay = min_delay
        self.window = window
        #: Sorted sliding reservoir of recent latencies.
        self._sorted: list[float] = []
        #: Same samples in arrival order (for window eviction).
        self._fifo: list[float] = []
        self.observed = 0

    def observe(self, latency: float) -> None:
        """Feed one completed request's end-to-end latency."""
        self.observed += 1
        bisect.insort(self._sorted, latency)
        self._fifo.append(latency)
        if len(self._fifo) > self.window:
            oldest = self._fifo.pop(0)
            index = bisect.bisect_left(self._sorted, oldest)
            self._sorted.pop(index)

    def delay(self) -> float | None:
        """Seconds to wait before hedging, or ``None`` while warming up."""
        if self.observed < self.warmup or not self._sorted:
            return None
        rank = min(
            len(self._sorted) - 1,
            int(self.quantile * len(self._sorted)),
        )
        return max(self._sorted[rank], self.min_delay)
