"""repro.resilience — surviving failures, stragglers and overload.

Four cooperating components, all opt-in through one
:class:`ResilienceOptions` value on :class:`repro.api.RunConfig` (or
directly on :class:`repro.engine.JoinJob`):

* :class:`FailureDetector` — phi-accrual heartbeat detection over the
  simulated wire (ALIVE → SUSPECT → DEAD, with recovery back).
* :class:`RecoveryManager` / :class:`CheckpointManager` — region
  failover to the ring successor, in-flight idempotent request replay,
  and periodic soft-state checkpoints for compute-node restarts.
* :class:`HedgePolicy` — adaptive-quantile speculative duplicates for
  straggling requests (first response wins on the idempotent ids).
* :class:`AdmissionController` — bounded per-data-node queues with
  FIFO backpressure and deadline shedding onto the cheap route.
  :class:`WeightedFairAdmission` is its multi-tenant extension
  (per-tenant weighted-fair parking, quotas, sheds charged to the
  offending tenant) used by ``repro.tenancy``.

``ResilienceOptions.off()`` wires nothing and is bit-identical to a
build without this package.
"""

from repro.resilience.admission import (
    AdmissionController,
    TenantShare,
    WeightedFairAdmission,
)
from repro.resilience.detector import FailureDetector, NodeState
from repro.resilience.hedging import HedgePolicy
from repro.resilience.manager import (
    DetectionReplay,
    ResilienceManager,
    publish_replay,
    replay_heartbeats,
)
from repro.resilience.options import ResilienceOptions
from repro.resilience.recovery import CheckpointManager, RecoveryManager

__all__ = [
    "AdmissionController",
    "CheckpointManager",
    "DetectionReplay",
    "FailureDetector",
    "HedgePolicy",
    "NodeState",
    "RecoveryManager",
    "ResilienceManager",
    "ResilienceOptions",
    "TenantShare",
    "WeightedFairAdmission",
    "publish_replay",
    "replay_heartbeats",
]
