"""Recovery: region failover and compute-node soft-state checkpoints.

Two halves, both driven by the failure detector:

* :class:`RecoveryManager` — on a confirmed death, move every region
  the dead node owns to its live ring successor (the same ascending
  sorted-id successor :meth:`Transport.replica_for` falls back to, so
  routing and storage agree on who the replica is) and ask every
  transport to replay its in-flight idempotent batches at the new
  owner.  New tuples route to the new owner automatically because the
  region map *is* the router's source of truth.

* :class:`CheckpointManager` — periodically deep-copy each compute
  node's *soft* state: the Lossy Counting frequency counter, the
  smoothed cost-model estimates, and the tiered cache.  None of this
  is needed for correctness (it is all rebuildable from traffic), but
  losing it on a compute-node restart resets every ski-rental race and
  misroutes until the estimators re-converge; restoring the checkpoint
  makes routing quality survive the restart.  Restore mutates the
  existing objects **in place** (``__dict__`` swap) because live
  references — e.g. the transport's ``on_timeout`` bound method — must
  keep pointing at the same cost model.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Any

from repro.obs.tracer import NO_TRACER, Tracer
from repro.resilience.detector import FailureDetector, NodeState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.transport import Transport
    from repro.store.partitioner import RegionMap


class CheckpointManager:
    """Periodic snapshots of compute-node soft state."""

    def __init__(self) -> None:
        self._snapshots: dict[int, dict[str, Any]] = {}
        self.taken = 0
        self.restored = 0

    def capture(self, runtime: Any, at: float) -> None:
        """Snapshot one compute node's estimators and cache."""
        snap: dict[str, Any] = {
            "at": at,
            "cost_model": copy.deepcopy(runtime.cost_model.__dict__),
            "cache": copy.deepcopy(runtime.cache.__dict__),
        }
        if runtime.optimizer is not None:
            snap["counter"] = copy.deepcopy(runtime.optimizer.counter.__dict__)
        self._snapshots[runtime.node_id] = snap
        self.taken += 1

    def latest(self, node_id: int) -> dict[str, Any] | None:
        return self._snapshots.get(node_id)

    def restore(self, runtime: Any) -> bool:
        """Rebuild ``runtime``'s soft state from its latest checkpoint.

        Returns ``False`` when no checkpoint exists yet.  The snapshot
        itself is copied again on the way out, so one checkpoint can
        seed any number of restarts.
        """
        snap = self._snapshots.get(runtime.node_id)
        if snap is None:
            return False
        self._restore_dict(runtime.cost_model, snap["cost_model"])
        self._restore_dict(runtime.cache, snap["cache"])
        if runtime.optimizer is not None and "counter" in snap:
            self._restore_dict(runtime.optimizer.counter, snap["counter"])
        self.restored += 1
        return True

    @staticmethod
    def _restore_dict(obj: Any, saved: dict[str, Any]) -> None:
        obj.__dict__.clear()
        obj.__dict__.update(copy.deepcopy(saved))


class RecoveryManager:
    """Region failover on confirmed data-node death."""

    def __init__(
        self,
        region_map: "RegionMap",
        detector: FailureDetector,
        tracer: Tracer = NO_TRACER,
    ) -> None:
        self.region_map = region_map
        self.detector = detector
        self.tracer = tracer
        #: ``node_id -> Transport`` of every attached compute node.
        self.transports: dict[int, "Transport"] = {}
        #: ``node_id -> callback(keys)`` cancelling abandoned cache
        #: reservations when that node's in-flight fetches die with a
        #: data node and are *not* replayed (replay fulfills them at
        #: the new owner; no-replay would leak the reserved slots).
        self.reservation_cleanups: dict[int, Any] = {}
        self.failovers = 0
        self.regions_moved = 0
        self.requests_replayed = 0
        self.reservations_cancelled = 0
        #: Silence-to-failover delay per death (recovery time component).
        self.detection_delays: list[float] = []

    def successor(self, dead: int) -> int | None:
        """First live node clockwise of ``dead`` on the sorted-id ring."""
        ring = sorted(self.region_map.data_nodes | {dead})
        start = ring.index(dead)
        for step in range(1, len(ring)):
            candidate = ring[(start + step) % len(ring)]
            if candidate == dead:
                continue
            try:
                if self.detector.state(candidate) is NodeState.DEAD:
                    continue
            except KeyError:
                pass  # unmonitored nodes are presumed alive
            return candidate
        return None

    def on_dead(self, dead: int, at: float) -> None:
        """Detector callback: fail ``dead`` over to its successor."""
        new_owner = self.successor(dead)
        if new_owner is None:
            return  # nobody left to fail over to
        self.failovers += 1
        # Elastic placement first: drop in-flight migrations, expired
        # double-serve grants and hot-key replicas involving the dead
        # node, so the region moves below start from a clean slate.
        # The static RegionMap has no such state (duck-typed no-op).
        on_node_dead = getattr(self.region_map, "on_node_dead", None)
        if on_node_dead is not None:
            on_node_dead(dead)
        moved = 0
        for region in list(self.region_map.regions_on_node(dead)):
            self.region_map.move_region(region, new_owner)
            moved += 1
        self.regions_moved += moved
        replayed = 0
        for node_id, transport in self.transports.items():
            stranded = transport.pending_memory_keys(dead)
            moved_batches = transport.fail_node(dead, new_owner)
            replayed += moved_batches
            if moved_batches == 0 and stranded:
                # The batches were not replayed (side-effecting UDFs or
                # no live successor for routing) — their memory-route
                # reservations would never be fulfilled.  Release them;
                # a late fulfill degrades safely to the disk tier.
                cleanup = self.reservation_cleanups.get(node_id)
                if cleanup is not None:
                    cleanup(stranded)
                    self.reservations_cancelled += len(stranded)
        self.requests_replayed += replayed
        if self.detector.detection_delays:
            self.detection_delays.append(self.detector.detection_delays[-1])
        if self.tracer.enabled:
            self.tracer.event(
                "failover", at=at, dead=dead, new_owner=new_owner,
                regions=moved, replayed=replayed,
            )
