"""ResilienceManager: glue between the sim clock and the components.

One manager per job ties the four components together on the simulated
event loop:

* each data node sends a heartbeat datagram every ``heartbeat_interval``
  seconds to the monitor (the lowest compute node) over a best-effort
  :class:`~repro.runtime.transport.OnewayChannel` — crash windows drop
  them on the wire, which is exactly how the detector hears about them;
* the monitor sweeps the :class:`FailureDetector` at the same cadence
  and hands newly-DEAD nodes to the :class:`RecoveryManager`;
* the :class:`CheckpointManager` snapshots every attached compute
  node's soft state every ``checkpoint_interval`` seconds.

All periodic ticks re-arm themselves **only while the job is active**
(the ``active`` predicate) — ``Simulator.run()`` drains the queue to
completion, so an unconditional self-rescheduling tick would keep the
loop alive forever.  A large tick cap backstops a genuinely stalled job
so it still terminates with the engine's "job stalled" diagnosis rather
than heartbeating into infinity.

The analytic engines (mapreduce / sparklite) never pump the event loop;
:func:`replay_heartbeats` gives them the same detector verdicts by
walking the tick schedule over the computed makespan after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.obs.tracer import NO_TRACER, Tracer
from repro.resilience.detector import FailureDetector
from repro.resilience.options import ResilienceOptions
from repro.resilience.recovery import CheckpointManager, RecoveryManager
from repro.runtime.transport import OnewayChannel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.cluster import Cluster
    from repro.store.partitioner import RegionMap

#: Wire size of one heartbeat datagram (node id + sequence + clock).
HEARTBEAT_BYTES = 64.0

#: Backstop on self-rescheduling ticks so a stalled job still drains.
MAX_TICKS_PER_TIMER = 100_000


class ResilienceManager:
    """Per-job lifecycle of detection, recovery and checkpointing."""

    def __init__(
        self,
        cluster: "Cluster",
        options: ResilienceOptions,
        data_nodes: Iterable[int],
        monitor_node: int,
        region_map: "RegionMap",
        tracer: Tracer = NO_TRACER,
    ) -> None:
        self.cluster = cluster
        self.options = options
        self.data_nodes = sorted(data_nodes)
        self.monitor_node = monitor_node
        self.tracer = tracer
        self.channel = OnewayChannel(cluster)
        self.detector = FailureDetector(
            self.data_nodes,
            interval=options.heartbeat_interval,
            suspect_phi=options.suspect_phi,
            dead_phi=options.dead_phi,
        )
        self.recovery = RecoveryManager(
            region_map=region_map, detector=self.detector, tracer=tracer
        )
        self.checkpoints = CheckpointManager()
        self._runtimes: list[Any] = []
        self._active: Callable[[], bool] = lambda: False

    def attach(self, runtime: Any) -> None:
        """Register one compute-node runtime (transport + soft state)."""
        self._runtimes.append(runtime)
        self.recovery.transports[runtime.node_id] = runtime.transport
        cache = getattr(runtime, "cache", None)
        if cache is not None and hasattr(cache, "cancel_reservation"):

            def cancel_stranded(keys: list, c: Any = cache) -> None:
                for key in keys:
                    c.cancel_reservation(key)

            self.recovery.reservation_cleanups[runtime.node_id] = cancel_stranded

    # ------------------------------------------------------------------
    # Event-loop wiring
    # ------------------------------------------------------------------
    def start(self, active: Callable[[], bool]) -> None:
        """Arm the periodic ticks; ``active`` gates re-arming."""
        self._active = active
        sim = self.cluster.sim
        opts = self.options
        if opts.detection:
            for node in self.data_nodes:
                self._arm(opts.heartbeat_interval,
                          lambda n=node: self._heartbeat(n))
            self._arm(opts.heartbeat_interval, self._sweep)
        if opts.recovery and opts.checkpoint_interval > 0 and self._runtimes:
            self._arm(opts.checkpoint_interval, self._checkpoint)
        del sim  # clock access goes through the tick closures

    def _arm(self, interval: float, body: Callable[[], None]) -> None:
        ticks = [0]

        def tick() -> None:
            if not self._active() or ticks[0] >= MAX_TICKS_PER_TIMER:
                return
            ticks[0] += 1
            body()
            self.cluster.sim.schedule_after(interval, tick)

        self.cluster.sim.schedule_after(interval, tick)

    def _heartbeat(self, node: int) -> None:
        self.channel.send(
            node, self.monitor_node, HEARTBEAT_BYTES, node,
            lambda payload, at: self.detector.record_heartbeat(payload, at),
        )

    def _sweep(self) -> None:
        now = self.cluster.sim.now
        for dead in self.detector.sweep(now):
            if self.options.recovery:
                self.recovery.on_dead(dead, now)

    def _checkpoint(self) -> None:
        now = self.cluster.sim.now
        for runtime in self._runtimes:
            self.checkpoints.capture(runtime, now)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def publish(self, registry: Any) -> None:
        """Write ``resilience.*`` metrics into one registry."""
        det = self.detector
        rec = self.recovery
        registry.counter("resilience.heartbeats.sent").inc(self.channel.sends)
        registry.counter("resilience.heartbeats.received").inc(det.heartbeats)
        registry.counter("resilience.detector.suspicions").inc(det.suspicions)
        registry.counter("resilience.detector.deaths").inc(det.deaths)
        registry.counter("resilience.detector.recoveries").inc(det.recoveries)
        for delay in det.detection_delays:
            registry.histogram("resilience.detector.delay_seconds").observe(delay)
        registry.counter("resilience.failover.count").inc(rec.failovers)
        registry.counter("resilience.failover.regions_moved").inc(rec.regions_moved)
        registry.counter("resilience.failover.requests_replayed").inc(
            rec.requests_replayed
        )
        registry.counter("resilience.failover.reservations_cancelled").inc(
            rec.reservations_cancelled
        )
        registry.counter("resilience.checkpoint.count").inc(self.checkpoints.taken)
        registry.counter("resilience.checkpoint.restored").inc(
            self.checkpoints.restored
        )
        hedges_issued = hedges_won = hedges_lost = 0
        sheds = parked = peak = 0
        for runtime in self._runtimes:
            transport = runtime.transport
            hedges_issued += transport.hedges_issued
            hedges_won += transport.hedges_won
            hedges_lost += transport.hedges_lost
            admission = getattr(runtime, "admission", None)
            if admission is not None:
                sheds += admission.shed_count
                parked += admission.parked_total
                peak = max(peak, admission.peak_inflight)
        registry.counter("resilience.hedges.issued").inc(hedges_issued)
        registry.counter("resilience.hedges.won").inc(hedges_won)
        registry.counter("resilience.hedges.lost").inc(hedges_lost)
        if hedges_issued:
            registry.gauge("resilience.hedges.wasted_ratio").set(
                hedges_lost / hedges_issued
            )
        registry.counter("resilience.admission.shed").inc(sheds)
        registry.counter("resilience.admission.parked").inc(parked)
        registry.gauge("resilience.admission.peak_inflight").set(peak)


@dataclass(frozen=True)
class DetectionReplay:
    """Detector outcome of an after-the-fact heartbeat replay."""

    deaths: int
    suspicions: int
    recoveries: int
    heartbeats: int
    heartbeats_sent: int
    detection_delays: tuple[float, ...]


def replay_heartbeats(
    cluster: "Cluster",
    options: ResilienceOptions,
    nodes: Iterable[int],
    horizon: float,
    registry: Any = None,
) -> DetectionReplay:
    """Analytic detection for engines that never pump the event loop.

    The mapreduce/sparklite engines compute their schedules in closed
    form, so there is no loop for live heartbeats to ride.  This walks
    the same tick schedule over ``[interval, horizon]`` after the fact:
    a node's heartbeat is suppressed exactly while
    ``cluster.node_is_down`` says its crash window is open — the same
    wire rule the fault injector applies — so the detector reaches the
    identical verdicts the event-loop engines would.  Survival of the
    work itself is the :class:`ShuffleChannel`'s at-least-once job; a
    death verdict here counts as a failover because that is where a
    deployment would re-run the dead worker's partitions.
    """
    detector = FailureDetector(
        nodes,
        interval=options.heartbeat_interval,
        suspect_phi=options.suspect_phi,
        dead_phi=options.dead_phi,
    )
    heartbeats_sent = 0
    deaths = 0
    t = options.heartbeat_interval
    while t <= horizon:
        for node in detector.nodes():
            heartbeats_sent += 1
            if not cluster.node_is_down(node, t):
                detector.record_heartbeat(node, t)
        deaths += len(detector.sweep(t))
        t += options.heartbeat_interval
    replay = DetectionReplay(
        deaths=deaths,
        suspicions=detector.suspicions,
        recoveries=detector.recoveries,
        heartbeats=detector.heartbeats,
        heartbeats_sent=heartbeats_sent,
        detection_delays=tuple(detector.detection_delays),
    )
    if registry is not None:
        publish_replay(replay, registry)
    return replay


def publish_replay(replay: DetectionReplay, registry: Any) -> None:
    """Write one :class:`DetectionReplay` as ``resilience.*`` metrics."""
    registry.counter("resilience.heartbeats.sent").inc(replay.heartbeats_sent)
    registry.counter("resilience.heartbeats.received").inc(replay.heartbeats)
    registry.counter("resilience.detector.suspicions").inc(replay.suspicions)
    registry.counter("resilience.detector.deaths").inc(replay.deaths)
    registry.counter("resilience.detector.recoveries").inc(replay.recoveries)
    registry.counter("resilience.failover.count").inc(replay.deaths)
    for delay in replay.detection_delays:
        registry.histogram("resilience.detector.delay_seconds").observe(delay)
