"""Pinned-seed benchmark scenarios for the ``repro.perf`` harness.

Two tiers:

* **micro** — tight loops over one subsystem (request routing, the
  Lossy Counting sketch, tiered-cache churn, event cancellation).
  They isolate a single hot path so a regression points at the
  responsible module, not at "the simulator got slower".
* **macro** — full ``run_join`` executions of the Figure 8 synthetic
  workload (data-heavy, skew z = 1.5, the paper's high-skew panel)
  across the four simulated engines plus the thread-pool
  ``LocalBackend`` and the real-process ``ClusterBackend`` (the
  ``cluster`` family; outputs-only digests, since worker processes
  make wall time nondeterministic).

Every scenario is deterministic: inputs come from pinned seeds, and
each run returns a digest of its observable results (join outputs,
cache/counter state, event order) so the harness can verify that the
optimized and reference code paths agree bit-for-bit before it trusts
any timing number.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Scenario", "ScenarioRun", "SCENARIOS", "smoke_scenarios"]


@dataclass(frozen=True)
class ScenarioRun:
    """Observable outcome of one scenario execution.

    ``sim_time`` is the simulated makespan for macro scenarios (0.0
    for micro loops, which have no simulated clock), and ``digest``
    covers everything the scenario is allowed to observe — two runs
    in different modes must produce equal ``ScenarioRun`` values.
    """

    sim_time: float
    digest: str
    n_items: int


@dataclass(frozen=True)
class Scenario:
    """One named benchmark: a runner plus harness metadata."""

    name: str
    kind: str  # "micro" | "macro"
    description: str
    runner: Callable[[], ScenarioRun]
    #: Included in the CI ``perf-smoke`` job (smallest per family).
    smoke: bool = False
    #: Macro scenarios measured ref-vs-opt for ``speedup_vs_reference``.
    headline: bool = False
    tags: tuple[str, ...] = field(default=())


def _digest(parts: list[str]) -> str:
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


# ----------------------------------------------------------------------
# Micro scenarios
# ----------------------------------------------------------------------
def _zipf_keys(n_keys: int, n_items: int, skew: float, seed: int) -> list[int]:
    rng = random.Random(seed)
    weights = [1.0 / (i + 1) ** skew for i in range(n_keys)]
    return rng.choices(range(n_keys), weights=weights, k=n_items)


def _micro_route(n_keys: int, n_items: int) -> ScenarioRun:
    """The Algorithm 1 hot loop: route a pinned Zipf stream.

    Builds one optimizer (cost model + tiered cache + lossy counter),
    feeds it cost observations for every key, then routes ``n_items``
    requests.  In optimized mode the loop goes through ``route_fast``
    (the path the engines use); in reference mode through ``route`` —
    the digest over routes and counters must not notice.
    """
    from repro.cache.tiered import TieredCache
    from repro.core.cost_model import CostModel, CostParameters
    from repro.core.frequency import LossyCounter
    from repro.core.optimizer import JoinLocationOptimizer
    from repro.perf.mode import reference_mode

    model = CostModel(node_id=0, bandwidth={1: 100e6}, local_disk_time=0.004)
    cache = TieredCache(memory_bytes=64_000.0, disk_bytes=256_000.0)
    opt = JoinLocationOptimizer(model, cache, counter=LossyCounter(epsilon=1e-3))
    rng = random.Random(11)
    for key in range(n_keys):
        model.observe(
            CostParameters(
                key=key,
                value_size=200.0 + rng.random() * 1800.0,
                compute_time=0.001 + rng.random() * 0.004,
                disk_time=0.003,
                node_id=1,
            )
        )
    model.observe_local_compute(0.002)
    stream = _zipf_keys(n_keys, n_items, skew=1.2, seed=23)
    use_fast = not reference_mode()
    routes: list[str] = []
    for key in stream:
        if use_fast:
            route, _value = opt.route_fast(key, 1)
        else:
            route = opt.route(key, 1).route
        routes.append(route.value)
        if route.is_data_request:
            # Fetch completes immediately in this micro model.
            opt.complete_fetch(key, f"v{key}", route)
    stats = opt.stats()
    parts = routes + [
        repr(
            (
                stats.local_memory,
                stats.local_disk,
                stats.compute_requests,
                stats.data_requests_memory,
                stats.data_requests_disk,
                stats.first_contact,
            )
        ),
        repr(cache.stats()),
    ]
    return ScenarioRun(sim_time=0.0, digest=_digest(parts), n_items=n_items)


def _micro_route_batch(n_keys: int, n_items: int, width: int) -> ScenarioRun:
    """The columnar routing kernel: a pinned Zipf stream in windows.

    Same setup as ``micro_route``, but the stream is processed in
    ``width``-tuple windows: optimized mode routes each window through
    ``route_batch`` (the sweep behind the engines' submit window);
    reference mode loops scalar ``route`` over the same windows.
    Fetches complete at window boundaries in *both* modes, so the
    digest over routes, counters and cache state must be identical.
    """
    from repro.cache.tiered import TieredCache
    from repro.core.cost_model import CostModel, CostParameters
    from repro.core.frequency import LossyCounter
    from repro.core.optimizer import JoinLocationOptimizer
    from repro.perf.mode import reference_mode

    model = CostModel(node_id=0, bandwidth={1: 100e6}, local_disk_time=0.004)
    cache = TieredCache(memory_bytes=64_000.0, disk_bytes=256_000.0)
    opt = JoinLocationOptimizer(model, cache, counter=LossyCounter(epsilon=1e-3))
    rng = random.Random(11)
    for key in range(n_keys):
        model.observe(
            CostParameters(
                key=key,
                value_size=200.0 + rng.random() * 1800.0,
                compute_time=0.001 + rng.random() * 0.004,
                disk_time=0.003,
                node_id=1,
            )
        )
    model.observe_local_compute(0.002)
    stream = _zipf_keys(n_keys, n_items, skew=1.2, seed=23)
    use_batch = not reference_mode()
    routes: list[str] = []
    for at in range(0, n_items, width):
        window = stream[at : at + width]
        if use_batch:
            lanes = opt.route_batch(window, [1] * len(window))
            decided = list(zip(window, lanes.routes))
        else:
            decided = [(key, opt.route(key, 1).route) for key in window]
        for key, route in decided:
            routes.append(route.value)
            if route.is_data_request:
                opt.complete_fetch(key, f"v{key}", route)
    stats = opt.stats()
    parts = routes + [
        repr(
            (
                stats.local_memory,
                stats.local_disk,
                stats.compute_requests,
                stats.data_requests_memory,
                stats.data_requests_disk,
                stats.first_contact,
            )
        ),
        repr(cache.stats()),
    ]
    return ScenarioRun(sim_time=0.0, digest=_digest(parts), n_items=n_items)


def _micro_lossy_counter(n_keys: int, n_items: int) -> ScenarioRun:
    """Lossy Counting over a bursty-then-Zipf pinned stream."""
    from repro.core.frequency import LossyCounter

    counter = LossyCounter(epsilon=1e-3)
    rng = random.Random(5)
    # Bursty prefix: each of the first 50 keys arrives in one burst.
    for key in range(min(50, n_keys)):
        for _ in range(rng.randint(1, 40)):
            counter.add(key)
    for key in _zipf_keys(n_keys, n_items, skew=1.3, seed=29):
        counter.add(key)
    frequent = counter.frequent_keys(support=0.001)
    parts = [
        repr((counter.total, counter.tracked)),
        repr(sorted((k, counter.count(k)) for k in frequent)),
    ]
    return ScenarioRun(sim_time=0.0, digest=_digest(parts), n_items=n_items)


def _micro_cache_churn(n_keys: int, n_items: int) -> ScenarioRun:
    """Tiered-cache churn: admissions, promotions, invalidations.

    Exercises the LFU-DA heap's lazy-deletion/compaction machinery
    with a pinned access trace whose working set overflows the memory
    tier, so entries constantly move memory -> disk -> evicted.
    """
    from repro.cache.tiered import TieredCache

    cache = TieredCache(memory_bytes=20_000.0, disk_bytes=60_000.0)
    rng = random.Random(17)
    sizes = {key: 100.0 + rng.random() * 900.0 for key in range(n_keys)}
    trace = _zipf_keys(n_keys, n_items, skew=0.9, seed=31)
    events: list[str] = []
    for i, key in enumerate(trace):
        cache.update_benefit(key, weight=1.0 + (key % 7))
        hit = cache.lookup(key)
        if hit is None:
            if cache.cond_cache_in_memory(key, None, sizes[key]):
                cache.fulfill(key, f"v{key}")
                events.append(f"m{key}")
            else:
                cache.add_to_disk(key, f"v{key}", sizes[key])
                events.append(f"d{key}")
        elif hit[1].name == "DISK":
            cache.cond_cache_in_memory(key, hit[0], sizes[key])
        if i % 97 == 0:
            cache.invalidate(key)
            events.append(f"x{key}")
    parts = events + [repr(cache.stats()), repr(sorted(cache.memory_keys))]
    return ScenarioRun(sim_time=0.0, digest=_digest(parts), n_items=n_items)


def _micro_event_cancel(n_events: int) -> ScenarioRun:
    """Schedule ``n_events``, cancel 90%, run the survivors.

    The regression target for the event queue's lazy-deletion
    accounting: heavy cancellation must stay O(log n) amortized
    instead of degrading into linear scans or unbounded queue growth.
    """
    from repro.sim.events import Simulator

    sim = Simulator()
    rng = random.Random(43)
    fired: list[int] = []
    handles = []
    for i in range(n_events):
        t = rng.random() * 100.0
        handles.append(sim.schedule_at(t, lambda i=i: fired.append(i)))
    cancel = rng.sample(range(n_events), (n_events * 9) // 10)
    for i in cancel:
        handles[i].cancel()
    sim.run()
    parts = [repr(len(fired)), repr(fired[:64]), repr(round(sim.now, 9))]
    return ScenarioRun(sim_time=sim.now, digest=_digest(parts), n_items=n_events)


# ----------------------------------------------------------------------
# Macro scenarios — Figure 8 synthetic workload through run_join
# ----------------------------------------------------------------------
def _macro_run_join(
    engine: str,
    backend: str,
    n_keys: int,
    n_tuples: int,
    skew: float,
    seed: int,
) -> ScenarioRun:
    from repro.api import JobSpec, RunConfig, run_join

    spec = JobSpec.synthetic(
        kind="data_heavy", n_keys=n_keys, n_tuples=n_tuples, skew=skew, seed=seed
    )
    report = run_join(spec, RunConfig(engine=engine, backend=backend))
    parts = sorted(map(repr, report.outputs.items()))
    if backend == "sim":
        # The simulated makespan is part of the contract; the local
        # backend's duration is wall-clock and never deterministic.
        parts.append(repr(round(report.makespan, 12)))
    sim_time = report.makespan if backend == "sim" else 0.0
    return ScenarioRun(sim_time=sim_time, digest=_digest(parts), n_items=n_tuples)


def _macro(engine: str, *, smoke: bool, headline: bool = False) -> Scenario:
    if headline:
        n_keys, n_tuples, skew, tag = 400, 8000, 1.5, "fig8"
    else:
        n_keys, n_tuples, skew, tag = 200, 2000, 1.5, "fig8"
    name = f"macro_fig8_{engine}" + ("_full" if headline else "")
    return Scenario(
        name=name,
        kind="macro",
        description=(
            f"Figure 8 data-heavy synthetic (z={skew}) on engine="
            f"{engine}, SimBackend, {n_tuples} tuples"
        ),
        runner=lambda: _macro_run_join(
            engine, "sim", n_keys=n_keys, n_tuples=n_tuples, skew=skew, seed=7
        ),
        smoke=smoke,
        headline=headline,
        tags=(tag, engine),
    )


def _macro_vector_sweep() -> ScenarioRun:
    """Vector-width invariance: widths 1, 16 and 256 agree bit-for-bit.

    Runs the Figure 8 data-heavy z=1.5 workload once per
    ``BatchOptions(vector_width=...)`` setting and fails loudly if any
    width changes the outputs or the simulated makespan.  The digest
    covers all three runs, so the harness's ref/opt comparison also
    pins the sweep against reference mode (where the widths are
    ignored and all three runs use the scalar paths).
    """
    from repro.api import BatchOptions, JobSpec, RunConfig, run_join

    n_tuples = 2000
    spec = JobSpec.synthetic(
        kind="data_heavy", n_keys=200, n_tuples=n_tuples, skew=1.5, seed=7
    )
    parts: list[str] = []
    baseline: list[str] | None = None
    sim_time = 0.0
    for width in (1, 16, 256):
        report = run_join(
            spec,
            RunConfig(
                engine="engine",
                batching=BatchOptions(vector_width=width),
            ),
        )
        outs = sorted(map(repr, report.outputs.items()))
        outs.append(repr(round(report.makespan, 12)))
        if baseline is None:
            baseline = outs
            sim_time = report.makespan
        elif outs != baseline:
            raise AssertionError(
                f"vector_width={width} diverged from vector_width=1"
            )
        parts.append(f"w{width}")
        parts.extend(outs)
    return ScenarioRun(
        sim_time=sim_time, digest=_digest(parts), n_items=3 * n_tuples
    )


def _macro_skew_migration() -> ScenarioRun:
    """The elastic-placement macro: a z=1.5 hot spot the coordinator
    actively splits, migrates and replicates away mid-run.

    The reference/optimized modes observe the frequency sketches at
    different instants (``route`` vs ``route_fast``), which can shift
    *when* the coordinator acts and therefore the makespan — so the
    digest covers the join outputs only, which must be identical no
    matter what the placement policy did.
    """
    from repro.api import JobSpec, RunConfig, run_join
    from repro.placement import ElasticOptions

    n_tuples = 4000
    spec = JobSpec.synthetic(
        kind="data_heavy", n_keys=400, n_tuples=n_tuples, skew=1.5, seed=21
    )
    report = run_join(
        spec,
        RunConfig(
            engine="engine",
            n_compute=4,
            n_data=4,
            seed=21,
            memory_cache_bytes=2e5,
            elastic=ElasticOptions.on(
                check_interval=0.05,
                min_observations=16,
                split_factor=1.5,
                hot_key_fraction=0.05,
            ),
        ),
    )
    parts = sorted(map(repr, report.outputs.items()))
    return ScenarioRun(
        sim_time=report.makespan, digest=_digest(parts), n_items=n_tuples
    )


# ----------------------------------------------------------------------
# Cluster scenarios — real driver/worker processes over IPC
# ----------------------------------------------------------------------
def _macro_cluster(
    engine: str,
    *,
    n_tuples: int,
    placement: str = "split",
    chaos: bool = False,
) -> ScenarioRun:
    from repro.cluster import ClusterBackend, ClusterOptions
    from repro.faults.schedule import FaultSchedule, MessageChaos
    from repro.runtime import JoinWorkload
    from repro.workloads.synthetic import SyntheticWorkload

    schedule = None
    if chaos:
        schedule = FaultSchedule(
            seed=11,
            chaos=(
                MessageChaos(
                    at=0.0, duration=60.0, drop=0.1, duplicate=0.05,
                    delay=0.05,
                ),
            ),
        )
    workload = JoinWorkload.from_synthetic(
        SyntheticWorkload.data_heavy(
            n_keys=80, n_tuples=n_tuples, skew=1.5, seed=7
        )
    )
    run = ClusterBackend(
        engine=engine,
        n_compute=2,
        n_data=2,
        seed=7,
        fault_schedule=schedule,
        options=ClusterOptions(placement=placement),
    ).run_join(workload)
    # Wall-clock backend: worker processes make timings nondeterministic,
    # so the digest covers the join outputs only — which must still be
    # bit-identical between reference and optimized modes.
    parts = sorted(map(repr, run.outputs.items()))
    return ScenarioRun(sim_time=0.0, digest=_digest(parts), n_items=n_tuples)


def _cluster(
    engine: str,
    *,
    n_tuples: int = 600,
    placement: str = "split",
    chaos: bool = False,
) -> Scenario:
    suffix = "_colocated" if placement == "colocated" else ""
    suffix += "_chaos" if chaos else ""
    detail = []
    if placement == "colocated":
        detail.append("colocated placement")
    if chaos:
        detail.append("seeded message chaos")
    return Scenario(
        name=f"macro_cluster_{engine}{suffix}",
        kind="macro",
        description=(
            f"Figure 8 data-heavy synthetic (z=1.5) on ClusterBackend "
            f"(real worker processes over IPC), engine={engine}, "
            f"{n_tuples} tuples"
            + (" — " + ", ".join(detail) if detail else "")
        ),
        runner=lambda: _macro_cluster(
            engine, n_tuples=n_tuples, placement=placement, chaos=chaos
        ),
        # Never in the perf-smoke matrix: forking a 4-process fleet per
        # measurement round is too heavy for the ref-vs-opt timing gate;
        # the CI cluster-smoke job covers these paths instead.
        smoke=False,
        tags=("fig8", "cluster", engine),
    )


SCENARIOS: tuple[Scenario, ...] = (
    Scenario(
        name="micro_route",
        kind="micro",
        description="Algorithm 1 routing loop, 20k Zipf requests",
        runner=lambda: _micro_route(n_keys=300, n_items=20_000),
        smoke=True,
        tags=("optimizer",),
    ),
    Scenario(
        name="micro_route_batch",
        kind="micro",
        description=(
            "Columnar routing kernel (route_batch), 20k Zipf requests "
            "in 256-tuple windows"
        ),
        runner=lambda: _micro_route_batch(
            n_keys=300, n_items=20_000, width=256
        ),
        smoke=True,
        tags=("optimizer", "vector"),
    ),
    Scenario(
        name="micro_lossy_counter",
        kind="micro",
        description="Lossy Counting sketch, bursty + Zipf stream",
        runner=lambda: _micro_lossy_counter(n_keys=2_000, n_items=40_000),
        tags=("frequency",),
    ),
    Scenario(
        name="micro_cache_churn",
        kind="micro",
        description="Tiered-cache churn with overflow + invalidations",
        runner=lambda: _micro_cache_churn(n_keys=400, n_items=20_000),
        tags=("cache",),
    ),
    Scenario(
        name="micro_event_cancel",
        kind="micro",
        description="10k scheduled events, 90% cancelled",
        runner=lambda: _micro_event_cancel(n_events=10_000),
        tags=("sim",),
    ),
    # One smoke-scale macro per engine (the CI perf-smoke matrix) ...
    _macro("engine", smoke=True),
    _macro("streaming", smoke=True),
    _macro("mapreduce", smoke=True),
    _macro("sparklite", smoke=True),
    # ... the LocalBackend macro (real threads; wall time only) ...
    Scenario(
        name="macro_fig8_local",
        kind="macro",
        description=(
            "Figure 8 data-heavy synthetic (z=1.5) on LocalBackend "
            "(thread pool), 2000 tuples"
        ),
        runner=lambda: _macro_run_join(
            "engine", "local", n_keys=200, n_tuples=2000, skew=1.5, seed=7
        ),
        tags=("fig8", "local"),
    ),
    # ... the ClusterBackend family (real processes; outputs-only digest,
    # exercised by the CI cluster-smoke job rather than the perf gate) ...
    _cluster("engine"),
    _cluster("mapreduce"),
    _cluster("engine", placement="colocated"),
    _cluster("engine", chaos=True),
    # ... the elastic-placement macro (outputs-only digest; the CI
    # elastic-smoke job runs it, not the perf-smoke timing gate) ...
    Scenario(
        name="macro_skew_migration",
        kind="macro",
        description=(
            "Zipf z=1.5 hot spot with elastic placement on (region "
            "splits, live migration, hot-key replicas), engine on "
            "SimBackend, 4000 tuples — outputs-only digest"
        ),
        runner=_macro_skew_migration,
        tags=("skew", "placement", "engine"),
    ),
    # ... the vector-width invariance sweep (widths 1/16/256 must be
    # bit-identical to each other and to reference mode) ...
    Scenario(
        name="macro_vector_sweep",
        kind="macro",
        description=(
            "Figure 8 data-heavy synthetic (z=1.5), engine on "
            "SimBackend, swept over BatchOptions vector_width "
            "1/16/256 — all widths must agree bit-for-bit"
        ),
        runner=_macro_vector_sweep,
        tags=("fig8", "engine", "vector"),
    ),
    # ... and the headline scenario the speedup gate runs ref-vs-opt.
    _macro("engine", smoke=False, headline=True),
)


def smoke_scenarios() -> tuple[Scenario, ...]:
    """The subset the CI ``perf-smoke`` job runs."""
    return tuple(s for s in SCENARIOS if s.smoke)
