"""repro.perf — deterministic performance harness and regression gate.

* :func:`reference_mode` / :data:`REFERENCE_ENV` — the switch that
  routes hot paths through their pre-optimization reference
  implementations (see :mod:`repro.perf.mode`).
* :mod:`repro.perf.scenarios` — pinned-seed micro and macro workloads.
* :mod:`repro.perf.harness` — runs scenarios (median-of-5 + MAD,
  memory pass, differential verification) into ``BENCH_perf.json``.
* :mod:`repro.perf.compare` — the >10% regression gate between two
  ``BENCH_perf.json`` files.

Run ``python -m repro.perf`` for the CLI.  Heavy submodules are
imported lazily so that core packages can import the mode switch
without dragging the harness (and its :mod:`repro.api` dependency)
into every process.
"""

from __future__ import annotations

from repro.perf.mode import REFERENCE_ENV, reference_mode

__all__ = [
    "REFERENCE_ENV",
    "reference_mode",
    "compare_benchmarks",
    "run_scenarios",
    "write_bench",
    "SCENARIOS",
]


def __getattr__(name: str):
    if name in ("run_scenarios", "write_bench"):
        from repro.perf import harness

        return getattr(harness, name)
    if name == "compare_benchmarks":
        from repro.perf.compare import compare_benchmarks

        return compare_benchmarks
    if name == "SCENARIOS":
        from repro.perf.scenarios import SCENARIOS

        return SCENARIOS
    raise AttributeError(f"module 'repro.perf' has no attribute {name!r}")
