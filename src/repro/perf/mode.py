"""Reference-mode switch for the hot-path optimizations (repro.perf).

Every optimization in the performance pass (cost-formula memoization,
heap tombstone compaction, columnar request blocks) keeps the exact
pre-optimization algorithm alive behind this switch.  With
``REPRO_PERF_REFERENCE=1`` in the environment, newly constructed
components take the reference code paths verbatim, which is what the
differential equivalence suite (``tests/test_perf_equivalence.py``)
and the harness's verification stage compare against: both paths must
produce byte-identical join outputs, simulated costs, and span trees.

The flag is read at *component construction time* (one ``os.environ``
lookup per simulator / cache / cost model, never per event), so tests
can flip it per-run without reloading modules.  This module must stay
dependency-free: the core packages import it, and anything heavier
would create an import cycle.
"""

from __future__ import annotations

import os

#: Environment variable selecting the pre-optimization reference path.
REFERENCE_ENV = "REPRO_PERF_REFERENCE"

_TRUTHY = ("1", "true", "yes", "on")


def reference_mode() -> bool:
    """Whether new components should take the pre-optimization paths."""
    return os.environ.get(REFERENCE_ENV, "").strip().lower() in _TRUTHY
