"""Regression gate between two ``BENCH_perf.json`` files.

A scenario regresses when its current median wall time exceeds the
baseline median by more than the gate threshold (default 10%) *beyond*
the combined noise bars: the tolerated ceiling is

    baseline_median * (1 + threshold) + baseline_MAD + current_MAD

so a noisy-but-unchanged scenario cannot trip the gate while a real
10% slowdown on a quiet scenario always does.  Scenarios that failed
differential verification in either file are reported as failures
regardless of timing — a fast wrong answer is still wrong.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

__all__ = ["Regression", "compare_benchmarks", "load_bench"]

DEFAULT_THRESHOLD = 0.10


@dataclass(frozen=True)
class Regression:
    """One gate violation."""

    scenario: str
    kind: str  # "slower" | "unverified"
    baseline_s: float | None
    current_s: float | None
    ratio: float | None
    detail: str

    def render(self) -> str:
        if self.kind == "slower":
            assert self.ratio is not None
            return (
                f"{self.scenario}: {self.ratio:.2f}x slower "
                f"({self.baseline_s * 1e3:.2f}ms -> "
                f"{self.current_s * 1e3:.2f}ms) — {self.detail}"
            )
        return f"{self.scenario}: {self.kind} — {self.detail}"


def load_bench(path: str | Path) -> dict[str, Any]:
    """Load one ``BENCH_perf.json`` payload."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def _by_name(payload: dict[str, Any]) -> dict[str, dict[str, Any]]:
    return {s["name"]: s for s in payload.get("scenarios", [])}


def compare_benchmarks(
    baseline: dict[str, Any],
    current: dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> list[Regression]:
    """All gate violations of ``current`` against ``baseline``."""
    base = _by_name(baseline)
    curr = _by_name(current)
    regressions: list[Regression] = []
    # Iterate over the *current* run: partial runs (the CI smoke
    # subset) are legitimate, so a baseline scenario the current run
    # skipped is not a regression.  A current scenario with no
    # baseline entry is new and passes by default.
    for name, c in curr.items():
        b = base.get(name)
        if b is None:
            continue
        if not c.get("verified_identical", False):
            regressions.append(
                Regression(
                    scenario=name,
                    kind="unverified",
                    baseline_s=b.get("wall_median_s"),
                    current_s=c.get("wall_median_s"),
                    ratio=None,
                    detail=c.get("error", "differential verification failed"),
                )
            )
            continue
        b_median = b.get("wall_median_s")
        c_median = c.get("wall_median_s")
        if b_median is None or c_median is None:
            continue
        ceiling = (
            b_median * (1.0 + threshold)
            + b.get("wall_mad_s", 0.0)
            + c.get("wall_mad_s", 0.0)
        )
        if c_median > ceiling:
            regressions.append(
                Regression(
                    scenario=name,
                    kind="slower",
                    baseline_s=b_median,
                    current_s=c_median,
                    ratio=c_median / b_median,
                    detail=(
                        f"exceeds {threshold:.0%} gate + noise bars "
                        f"(ceiling {ceiling * 1e3:.2f}ms)"
                    ),
                )
            )
    return regressions
