"""The ``repro.perf`` benchmark runner.

For each scenario the harness does, in order:

1. **Differential verification** — one run in reference mode and one
   in optimized mode; their :class:`ScenarioRun` digests (join
   outputs, simulated makespan, subsystem state) must be identical or
   the harness refuses to emit timings for that scenario.  A perf
   number for a code path that changed behaviour is worse than no
   number.
2. **Timing** — ``reps`` optimized-mode runs; reported as median
   wall-time with the median absolute deviation (MAD) as the noise
   bar.  Median-of-5 + MAD is robust to the one-off scheduler hiccups
   that make min/mean gates flaky in CI.
3. **Memory** — one run under :mod:`tracemalloc`: peak traced bytes
   and total allocation count.  Process peak RSS is recorded once per
   harness invocation (``ru_maxrss`` is a high-water mark, not
   per-scenario).
4. For **headline** scenarios, a paired interleaved ref/opt pass
   computing ``speedup_vs_reference`` from the per-mode minima —
   interleaving cancels slow drift (thermal throttling, noisy
   neighbours) that back-to-back blocks would alias into the ratio.

The result is one JSON payload, written as ``BENCH_perf.json``.
"""

from __future__ import annotations

import json
import os
import resource
import statistics
import time
import tracemalloc
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.perf.mode import REFERENCE_ENV
from repro.perf.scenarios import SCENARIOS, Scenario, ScenarioRun

__all__ = ["run_scenarios", "write_bench", "verify_scenario"]

#: Harness defaults: median-of-5 timing, min-of-7 paired speedup.
DEFAULT_REPS = 5
SPEEDUP_PAIRS = 7


def _in_mode(reference: bool, fn: Callable[[], ScenarioRun]) -> ScenarioRun:
    """Run ``fn`` with the reference switch pinned, then restore it."""
    saved = os.environ.get(REFERENCE_ENV)
    os.environ[REFERENCE_ENV] = "1" if reference else "0"
    try:
        return fn()
    finally:
        if saved is None:
            os.environ.pop(REFERENCE_ENV, None)
        else:
            os.environ[REFERENCE_ENV] = saved


def verify_scenario(scenario: Scenario) -> tuple[bool, ScenarioRun, ScenarioRun]:
    """Run ``scenario`` once per mode and compare the digests."""
    ref = _in_mode(True, scenario.runner)
    opt = _in_mode(False, scenario.runner)
    return ref == opt, ref, opt


def _timed(scenario: Scenario, reference: bool) -> tuple[float, ScenarioRun]:
    t0 = time.perf_counter()
    run = _in_mode(reference, scenario.runner)
    return time.perf_counter() - t0, run


def _memory_pass(scenario: Scenario) -> dict[str, Any]:
    tracemalloc.start()
    try:
        _in_mode(False, scenario.runner)
        stats = tracemalloc.take_snapshot().statistics("filename")
        _current, peak = tracemalloc.get_traced_memory()
        return {
            "peak_traced_bytes": int(peak),
            "allocation_count": int(sum(s.count for s in stats)),
        }
    finally:
        tracemalloc.stop()


def _speedup_pass(scenario: Scenario, pairs: int) -> dict[str, Any]:
    """Interleaved ref/opt minima; also re-checks digest equality."""
    refs: list[float] = []
    opts: list[float] = []
    identical = True
    # Warmup pair so neither mode pays first-run import/JIT-warm costs.
    _timed(scenario, reference=True)
    _timed(scenario, reference=False)
    for _ in range(pairs):
        dt_ref, run_ref = _timed(scenario, reference=True)
        dt_opt, run_opt = _timed(scenario, reference=False)
        refs.append(dt_ref)
        opts.append(dt_opt)
        identical = identical and run_ref == run_opt
    return {
        "reference_min_s": min(refs),
        "optimized_min_s": min(opts),
        "speedup_vs_reference": min(refs) / min(opts) if min(opts) > 0 else 0.0,
        "pairs": pairs,
        "identical_outputs": identical,
    }


def _measure(
    scenario: Scenario, reps: int, memory: bool, speedup_pairs: int
) -> dict[str, Any]:
    verified, ref_run, opt_run = verify_scenario(scenario)
    entry: dict[str, Any] = {
        "name": scenario.name,
        "kind": scenario.kind,
        "description": scenario.description,
        "tags": list(scenario.tags),
        "n_items": opt_run.n_items,
        "verified_identical": verified,
        "digest": opt_run.digest,
    }
    if not verified:
        entry["error"] = (
            "reference/optimized divergence: "
            f"ref={ref_run.digest} opt={opt_run.digest}"
        )
        return entry

    walls = []
    for _ in range(reps):
        dt, run = _timed(scenario, reference=False)
        walls.append(dt)
    median = statistics.median(walls)
    mad = statistics.median(abs(w - median) for w in walls)
    entry.update(
        {
            "reps": reps,
            "wall_median_s": median,
            "wall_mad_s": mad,
            "wall_min_s": min(walls),
            "sim_time_s": run.sim_time,
        }
    )
    if memory:
        entry.update(_memory_pass(scenario))
    if scenario.headline:
        entry["speedup"] = _speedup_pass(scenario, speedup_pairs)
    return entry


def run_scenarios(
    names: Iterable[str] | None = None,
    reps: int = DEFAULT_REPS,
    memory: bool = True,
    speedup_pairs: int = SPEEDUP_PAIRS,
    scenarios: tuple[Scenario, ...] | None = None,
) -> dict[str, Any]:
    """Run the selected scenarios and return the ``BENCH_perf`` payload."""
    pool = scenarios if scenarios is not None else SCENARIOS
    if names is not None:
        wanted = set(names)
        unknown = wanted - {s.name for s in pool}
        if unknown:
            raise ValueError(f"unknown scenario(s): {sorted(unknown)}")
        pool = tuple(s for s in pool if s.name in wanted)
    results = [
        _measure(s, reps=reps, memory=memory, speedup_pairs=speedup_pairs)
        for s in pool
    ]
    return {
        "bench": "perf",
        "schema": 1,
        "reps": reps,
        "peak_rss_kb": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
        "scenarios": results,
    }


def write_bench(payload: dict[str, Any], path: str | Path) -> Path:
    """Write the payload as pretty-printed JSON (``BENCH_perf.json``)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return target
