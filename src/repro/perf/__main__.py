"""CLI for the performance harness.

Usage::

    python -m repro.perf run [--out BENCH_perf.json] [--scenarios a,b]
                             [--reps 5] [--smoke] [--no-memory]
    python -m repro.perf compare BASELINE CURRENT [--threshold 0.1]
                                 [--warn-only]

``run`` executes the pinned-seed scenarios (differential verification
first, then timing/memory passes) and writes the JSON payload.
``compare`` gates a current payload against a committed baseline and
exits non-zero on regressions unless ``--warn-only`` is given.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.perf.harness import run_scenarios, write_bench
    from repro.perf.scenarios import smoke_scenarios

    names = args.scenarios.split(",") if args.scenarios else None
    pool = smoke_scenarios() if args.smoke else None
    payload = run_scenarios(
        names=names,
        reps=args.reps,
        memory=not args.no_memory,
        scenarios=pool,
    )
    path = write_bench(payload, args.out)
    failures = [
        s["name"] for s in payload["scenarios"] if not s["verified_identical"]
    ]
    for s in payload["scenarios"]:
        median = s.get("wall_median_s")
        line = f"{s['name']:28s}"
        if median is not None:
            line += f" {median * 1e3:9.2f}ms ±{s['wall_mad_s'] * 1e3:.2f}"
        speed = s.get("speedup")
        if speed:
            line += f"  speedup {speed['speedup_vs_reference']:.2f}x"
        print(line)
    print(f"wrote {path}")
    if failures:
        print(f"DIVERGENCE in: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.perf.compare import compare_benchmarks, load_bench

    regressions = compare_benchmarks(
        load_bench(args.baseline),
        load_bench(args.current),
        threshold=args.threshold,
    )
    if not regressions:
        print("perf gate: OK (no regressions)")
        return 0
    for reg in regressions:
        print(f"perf gate: {reg.render()}", file=sys.stderr)
    if args.warn_only:
        print("perf gate: WARN-ONLY mode, not failing", file=sys.stderr)
        return 0
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.perf")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run scenarios, write BENCH_perf.json")
    run_p.add_argument("--out", default="BENCH_perf.json")
    run_p.add_argument("--scenarios", default=None,
                       help="comma-separated scenario names (default: all)")
    run_p.add_argument("--reps", type=int, default=5)
    run_p.add_argument("--smoke", action="store_true",
                       help="only the CI smoke subset")
    run_p.add_argument("--no-memory", action="store_true",
                       help="skip the tracemalloc pass")
    run_p.set_defaults(fn=_cmd_run)

    cmp_p = sub.add_parser("compare", help="gate current vs baseline")
    cmp_p.add_argument("baseline")
    cmp_p.add_argument("current")
    cmp_p.add_argument("--threshold", type=float, default=0.10)
    cmp_p.add_argument("--warn-only", action="store_true")
    cmp_p.set_defaults(fn=_cmd_compare)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
