"""Deterministic fault schedules.

A :class:`FaultSchedule` is a *value*: a seeded, fully explicit list of
everything that will go wrong during a run.  Handing the same schedule
to two runs perturbs them identically, which is what makes fault
testing reproducible — the differential oracle in ``tests/oracle.py``
replays a workload under a schedule and checks the output bit-for-bit
against a naive single-node join.

Fault types (the paper's Section 9.1.1 observations, generalized):

* :class:`CrashFault` — a data node dies and restarts later, losing
  every in-flight request and response addressed to it.
* :class:`MessageChaos` — a window during which the network drops,
  duplicates or delays (and therefore reorders) messages with seeded
  probabilities.
* :class:`StragglerFault` — a data node serves every request
  ``slowdown`` times slower during a window.
* :class:`UpdateFault` — a mid-run table update racing with cached
  values (Section 4.2.3's consistency hazard, injected on purpose).
* :class:`ReplaySlice` — a speculative task restart: a contiguous
  slice of the input is fed again (Section 9.1.1's duplicated map
  tasks).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Hashable, Sequence

from repro.sim.rng import make_rng


@dataclass(frozen=True)
class CrashFault:
    """Data node ``node_id`` is down during ``[at, at + duration)``."""

    node_id: int
    at: float
    duration: float

    def __post_init__(self) -> None:
        if self.at < 0 or self.duration <= 0:
            raise ValueError("crash needs at >= 0 and duration > 0")

    @property
    def restart_at(self) -> float:
        return self.at + self.duration


@dataclass(frozen=True)
class StragglerFault:
    """Data node ``node_id`` runs ``slowdown``x slower in a window."""

    node_id: int
    at: float
    duration: float
    slowdown: float = 4.0

    def __post_init__(self) -> None:
        if self.at < 0 or self.duration <= 0:
            raise ValueError("straggler needs at >= 0 and duration > 0")
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1")


@dataclass(frozen=True)
class MessageChaos:
    """Window of probabilistic message faults on every non-local link.

    Each message sent while the window is active independently:

    * disappears with probability ``drop``,
    * is delivered twice with probability ``duplicate`` (the second
      copy ``max_delay``-bounded later — retried work arriving twice),
    * is delayed by up to ``max_delay`` seconds with probability
      ``delay`` (overtaking later traffic, i.e. reordering).

    Draws come from the injector's RNG, seeded by the schedule, so the
    same schedule faults the same messages in an identical run.
    """

    at: float
    duration: float
    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    max_delay: float = 0.05

    def __post_init__(self) -> None:
        if self.at < 0 or self.duration <= 0:
            raise ValueError("chaos needs at >= 0 and duration > 0")
        for name in ("drop", "duplicate", "delay"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p!r}")
        if self.drop + self.duplicate + self.delay > 1.0:
            raise ValueError("fault probabilities must sum to <= 1")
        if self.max_delay < 0:
            raise ValueError("max_delay must be non-negative")


@dataclass(frozen=True)
class UpdateFault:
    """The stored row for ``key`` changes to ``value`` at time ``at``."""

    at: float
    key: Hashable
    value: Any

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("update time must be non-negative")


@dataclass(frozen=True)
class MemoryPressureFault:
    """Node ``node_id``'s memory budget shrinks to ``factor`` of itself.

    ``at`` is simulated seconds on the simulator backends; the cluster
    backend re-expresses it in served-message-index coordinates (see
    :meth:`repro.faults.wire.WireFaults.from_schedule`) so real-process
    workers feel the squeeze at the equivalent point in the run.  The
    shrink is a no-op (but still recorded) when the run has no
    :class:`~repro.memory.options.MemoryOptions` budget to squeeze.
    """

    node_id: int
    at: float
    factor: float = 0.5

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("memory pressure time must be non-negative")
        if not 0.0 < self.factor < 1.0:
            raise ValueError("factor must be in (0, 1)")


@dataclass(frozen=True)
class ReplaySlice:
    """A restarted task replays ``[start, start + length)`` of the input.

    Fractions of the input stream, mirroring how a speculative restart
    re-feeds one task's contiguous input split.
    """

    start: float = 0.0
    length: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.start <= 1.0 or not 0.0 < self.length <= 1.0:
            raise ValueError("start must be in [0, 1], length in (0, 1]")


@dataclass(frozen=True)
class FaultSchedule:
    """Everything that will go wrong during one run, ahead of time."""

    seed: int = 0
    crashes: tuple[CrashFault, ...] = ()
    stragglers: tuple[StragglerFault, ...] = ()
    chaos: tuple[MessageChaos, ...] = ()
    updates: tuple[UpdateFault, ...] = ()
    replays: tuple[ReplaySlice, ...] = ()
    memory_pressure: tuple[MemoryPressureFault, ...] = ()

    def __len__(self) -> int:
        return (
            len(self.crashes)
            + len(self.stragglers)
            + len(self.chaos)
            + len(self.updates)
            + len(self.replays)
            + len(self.memory_pressure)
        )

    @property
    def fault_kinds(self) -> set[str]:
        """Which fault families the schedule exercises."""
        kinds = set()
        if self.crashes:
            kinds.add("crash")
        if self.stragglers:
            kinds.add("straggler")
        if self.chaos:
            kinds.add("chaos")
        if self.updates:
            kinds.add("update")
        if self.replays:
            kinds.add("replay")
        if self.memory_pressure:
            kinds.add("memory_pressure")
        return kinds

    def with_seed(self, seed: int) -> "FaultSchedule":
        """The same fault plan with a different chaos RNG stream."""
        return replace(self, seed=seed)

    def apply_replays(self, keys: Sequence[Hashable]) -> list[Hashable]:
        """Expand the input stream with every replayed slice appended.

        Mirrors a speculative restart: the duplicated split re-enters
        the framework *after* the original input, as extra tuples.
        """
        expanded = list(keys)
        n = len(expanded)
        for replay in self.replays:
            lo = int(replay.start * n)
            hi = min(n, lo + max(int(replay.length * n), 1))
            expanded.extend(keys[lo:hi])
        return expanded

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        data_nodes: Sequence[int],
        horizon: float,
        keys: Sequence[Hashable] = (),
        n_crashes: int = 1,
        n_stragglers: int = 1,
        n_chaos: int = 1,
        n_updates: int = 0,
        n_replays: int = 0,
        n_memory_pressure: int = 0,
        max_slowdown: float = 6.0,
        max_drop: float = 0.3,
    ) -> "FaultSchedule":
        """Draw a schedule deterministically from ``seed``.

        ``horizon`` bounds fault windows: every fault starts within
        ``[0, horizon)`` and lasts at most ``horizon / 4``, so a run
        roughly ``horizon`` long always outlives its faults — the
        retry/fallback machinery needs *eventual* health to guarantee
        completion.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if not data_nodes:
            raise ValueError("need at least one data node to fault")
        rng = make_rng(seed, "fault-schedule")
        max_len = horizon / 4.0

        def window() -> tuple[float, float]:
            start = float(rng.uniform(0.0, horizon * 0.75))
            length = float(rng.uniform(max_len * 0.1, max_len))
            return start, length

        crashes = []
        for _ in range(n_crashes):
            start, length = window()
            crashes.append(CrashFault(
                node_id=int(rng.choice(list(data_nodes))),
                at=start, duration=length,
            ))
        stragglers = []
        for _ in range(n_stragglers):
            start, length = window()
            stragglers.append(StragglerFault(
                node_id=int(rng.choice(list(data_nodes))),
                at=start, duration=length,
                slowdown=float(rng.uniform(1.5, max_slowdown)),
            ))
        chaos = []
        for _ in range(n_chaos):
            start, length = window()
            chaos.append(MessageChaos(
                at=start, duration=length,
                drop=float(rng.uniform(0.0, max_drop)),
                duplicate=float(rng.uniform(0.0, 0.2)),
                delay=float(rng.uniform(0.0, 0.2)),
                max_delay=float(rng.uniform(0.005, 0.05)),
            ))
        updates = []
        if n_updates and keys:
            unique = sorted(set(keys), key=repr)
            for i in range(n_updates):
                key = unique[int(rng.integers(0, len(unique)))]
                updates.append(UpdateFault(
                    at=float(rng.uniform(0.0, horizon)),
                    key=key,
                    value=f"updated-{key}-{i}",
                ))
        replays = []
        for _ in range(n_replays):
            replays.append(ReplaySlice(
                start=float(rng.uniform(0.0, 0.9)),
                length=float(rng.uniform(0.02, 0.1)),
            ))
        pressure = []
        for _ in range(n_memory_pressure):
            pressure.append(MemoryPressureFault(
                node_id=int(rng.choice(list(data_nodes))),
                at=float(rng.uniform(0.0, horizon * 0.75)),
                factor=float(rng.uniform(0.25, 0.75)),
            ))
        return cls(
            seed=seed,
            crashes=tuple(crashes),
            stragglers=tuple(stragglers),
            chaos=tuple(chaos),
            updates=tuple(updates),
            replays=tuple(replays),
            memory_pressure=tuple(pressure),
        )
