"""The fault injector: arms a :class:`FaultSchedule` on a live cluster.

The injector is the single point where faults touch the system:

* crash windows are registered with the cluster, and the injector's
  delivery policy swallows any message whose sender is down at send
  time or whose receiver is down at arrival time — in-flight requests
  and responses die with the node;
* message chaos (drop / duplicate / delay) is applied per message from
  the schedule's seeded RNG via :meth:`plan`, the
  :class:`repro.sim.network.DeliveryPolicy` hook;
* straggler windows are armed on the affected data-node servers;
* update faults are scheduled against the KV store.

Nothing else in the system knows faults exist: the engine only sees
messages that never arrive, arrive twice, or arrive late — exactly the
failure surface a real deployment exposes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.schedule import FaultSchedule
from repro.obs.tracer import NO_TRACER, Tracer
from repro.sim.cluster import Cluster
from repro.sim.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.trace import FaultTrace
    from repro.store.datanode import DataNodeServer
    from repro.store.kvstore import KVStore


class FaultInjector:
    """Installs one schedule's faults and counts what it inflicted."""

    def __init__(
        self,
        schedule: FaultSchedule,
        trace: "FaultTrace | None" = None,
        tracer: Tracer = NO_TRACER,
    ) -> None:
        self.schedule = schedule
        self.trace = trace
        self.tracer = tracer
        self._rng = make_rng(schedule.seed, "fault-injector")
        self._cluster: Cluster | None = None
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_delayed = 0
        self.crash_drops = 0
        self._installed = False

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(
        self,
        cluster: Cluster,
        servers: "dict[int, DataNodeServer] | None" = None,
        kvstore: "KVStore | None" = None,
        budgets: "dict[int, object] | None" = None,
    ) -> None:
        """Arm every fault in the schedule (idempotent per injector).

        ``budgets`` maps node id to that node's
        :class:`~repro.memory.budget.MemoryBudget`; memory-pressure
        faults shrink the targeted budget at their scheduled time.
        With no budget wired (memory adaptation off) the event is still
        recorded — the squeeze simply has nothing to squeeze.
        """
        if self._installed:
            raise RuntimeError("injector already installed")
        self._installed = True
        self._cluster = cluster
        for crash in self.schedule.crashes:
            cluster.schedule_downtime(crash.node_id, crash.at, crash.restart_at)
            self._record(crash.at, "crash", crash.node_id,
                         f"down for {crash.duration:.3f}s")
        for straggler in self.schedule.stragglers:
            if servers is None or straggler.node_id not in servers:
                raise ValueError(
                    f"straggler targets node {straggler.node_id} but no such "
                    "data-node server was supplied"
                )
            servers[straggler.node_id].add_slowdown(
                straggler.at, straggler.at + straggler.duration,
                straggler.slowdown,
            )
            self._record(straggler.at, "straggler", straggler.node_id,
                         f"{straggler.slowdown:.1f}x for {straggler.duration:.3f}s")
        for chaos in self.schedule.chaos:
            self._record(chaos.at, "chaos", -1,
                         f"drop={chaos.drop:.2f} dup={chaos.duplicate:.2f} "
                         f"delay={chaos.delay:.2f}")
        if self.schedule.updates:
            if kvstore is None:
                raise ValueError("update faults need the kvstore")
            for update in self.schedule.updates:
                def apply(u=update) -> None:
                    kvstore.update_value(u.key, u.value, at_time=u.at)
                    self._record(u.at, "update", -1, f"key={u.key!r}")

                cluster.sim.schedule_at(update.at, apply)
        for pressure in self.schedule.memory_pressure:
            budget = None if budgets is None else budgets.get(pressure.node_id)

            def squeeze(p=pressure, b=budget) -> None:
                freed = 0.0 if b is None else b.shrink(p.factor)
                self._record(
                    p.at, "memory-pressure", p.node_id,
                    f"factor={p.factor:.2f} freed={freed:.0f}B"
                    + ("" if b is not None else " (no budget armed)"),
                )

            cluster.sim.schedule_at(pressure.at, squeeze)
        cluster.network.fault_policy = self

    # ------------------------------------------------------------------
    # DeliveryPolicy
    # ------------------------------------------------------------------
    def plan(
        self, src: int, dst: int, send_time: float, arrive_time: float
    ) -> list[float]:
        """Decide the fate of one message (the network's fault hook)."""
        cluster = self._cluster
        assert cluster is not None, "plan() before install()"
        if cluster.node_is_down(src, send_time) or cluster.node_is_down(
            dst, arrive_time
        ):
            self.crash_drops += 1
            self._record(send_time, "crash-drop", dst, f"{src}->{dst}")
            return []
        chaos = self._active_chaos(send_time)
        if chaos is None:
            return [0.0]
        roll = float(self._rng.random())
        if roll < chaos.drop:
            self.messages_dropped += 1
            self._record(send_time, "drop", dst, f"{src}->{dst}")
            return []
        if roll < chaos.drop + chaos.duplicate:
            self.messages_duplicated += 1
            extra = float(self._rng.uniform(0.0, chaos.max_delay))
            self._record(send_time, "duplicate", dst, f"{src}->{dst}")
            return [0.0, extra]
        if roll < chaos.drop + chaos.duplicate + chaos.delay:
            self.messages_delayed += 1
            extra = float(self._rng.uniform(0.0, chaos.max_delay))
            self._record(send_time, "delay", dst, f"{src}->{dst} +{extra:.4f}s")
            return [extra]
        return [0.0]

    def _active_chaos(self, at: float):
        for chaos in self.schedule.chaos:
            if chaos.at <= at < chaos.at + chaos.duration:
                return chaos
        return None

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    @property
    def messages_faulted(self) -> int:
        """Total messages the injector interfered with."""
        return (
            self.messages_dropped
            + self.messages_duplicated
            + self.messages_delayed
            + self.crash_drops
        )

    def _record(self, time: float, kind: str, node_id: int, detail: str) -> None:
        if self.trace is not None:
            self.trace.record(time, kind, node_id, detail)
        if self.tracer.enabled:
            self.tracer.event(
                f"fault.{kind}", at=time, node=node_id, detail=detail
            )
