"""Fault-tolerance policy: the engine's retry/timeout/fallback knobs.

The state machine lives in :class:`repro.engine.compute_node
.ComputeNodeRuntime`; this dataclass is its configuration:

1. Every sent batch arms a timeout (``request_timeout`` scaled by
   ``backoff_factor ** attempt``, capped at ``max_backoff``).
2. A timed-out batch is re-sent with the *same* idempotency token —
   the data node replays its cached response if the original request
   actually arrived and only the response was lost.
3. After ``max_retries`` timeouts a compute batch degrades to a data
   request against a replica data node: fetch the raw value from a
   healthy copy and run the UDF locally.  Fallback requests carry the
   same machinery, cycling through replicas until one answers.

Every timeout is charged to the cost model
(:meth:`repro.core.cost_model.CostModel.observe_timeout`), so the
optimizer learns to route around nodes that keep timing out.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FaultTolerance:
    """Retry/timeout/fallback configuration for one job.

    Attributes
    ----------
    request_timeout:
        Seconds to wait for a batch response before retrying.  ``None``
        disables the whole machinery (the pre-fault-tolerance engine).
    max_retries:
        Retries against the primary before degrading to a replica.
    backoff_factor:
        Multiplier applied to the timeout on each successive attempt
        (bounded exponential backoff).
    max_backoff:
        Upper bound on any single attempt's timeout.
    fallback_to_replica:
        Whether exhausted compute batches degrade to data requests
        against replica partitions; when False the batch keeps
        retrying its primary forever (liveness then depends on the
        primary recovering).
    """

    request_timeout: float | None = None
    max_retries: int = 3
    backoff_factor: float = 2.0
    max_backoff: float = 60.0
    fallback_to_replica: bool = True

    def __post_init__(self) -> None:
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_backoff <= 0:
            raise ValueError("max_backoff must be positive")

    @property
    def enabled(self) -> bool:
        """Whether timeouts are armed at all."""
        return self.request_timeout is not None

    def timeout_for(self, attempt: int) -> float:
        """Timeout for the given (0-based) attempt, with backoff."""
        if self.request_timeout is None:
            raise ValueError("fault tolerance is disabled")
        return min(
            self.request_timeout * self.backoff_factor ** attempt,
            self.max_backoff,
        )
