"""Deterministic fault injection for the join engine.

Public surface:

* :class:`~repro.faults.schedule.FaultSchedule` and its fault event
  types — a seeded, explicit plan of everything that will go wrong;
* :class:`~repro.faults.injector.FaultInjector` — arms a schedule on a
  live cluster (network chaos, crash windows, stragglers, updates);
* :class:`~repro.faults.policy.FaultTolerance` — the engine-side
  retry/timeout/fallback configuration that lets jobs survive the
  schedule with oracle-identical output;
* :class:`~repro.faults.wire.WireFaults` — the same schedule
  re-expressed in served-message coordinates for the real worker
  processes of the cluster backend.
"""

from repro.faults.injector import FaultInjector
from repro.faults.policy import FaultTolerance
from repro.faults.schedule import (
    CrashFault,
    FaultSchedule,
    MemoryPressureFault,
    MessageChaos,
    ReplaySlice,
    StragglerFault,
    UpdateFault,
)
from repro.faults.wire import WireFaults

__all__ = [
    "CrashFault",
    "FaultInjector",
    "FaultSchedule",
    "FaultTolerance",
    "MemoryPressureFault",
    "MessageChaos",
    "ReplaySlice",
    "StragglerFault",
    "UpdateFault",
    "WireFaults",
]
