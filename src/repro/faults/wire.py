"""Distributing a :class:`FaultSchedule` to real worker processes.

The simulated engines inject faults at one seam —
:meth:`repro.sim.network.Network.delivery_plan` — where time is the
simulator's clock.  A real worker process has no simulated clock, so
this module re-expresses a schedule in the one coordinate every worker
*does* share deterministically with the driver: the worker's own
served-message sequence number.

The mapping is fixed at :data:`MESSAGES_PER_SECOND`: a chaos window
``[at, at + duration)`` in simulated seconds becomes the message-index
window ``[at * R, (at + duration) * R)``, and a crash at ``at``
becomes "exit the process just before serving message ``at * R``".
Per-message draws come from ``make_rng(schedule.seed, "wire-<node>")``
in strict sequence order, so one ``(schedule, node_id)`` pair always
produces the same drop/duplicate/delay stream — what varies across
runs is only which logical request happens to occupy a given slot
(OS scheduling owns that on a real transport; the differential oracle
is what pins the *outputs* regardless).

``node_id`` uses the same numbering as :class:`SimBackend`: compute
workers are ``0 .. n_compute-1``, data workers ``n_compute ..
n_compute+n_data-1`` — a schedule written for the simulator names the
same nodes on the cluster backend.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.faults.schedule import FaultSchedule
from repro.sim.rng import make_rng

#: Simulated-seconds -> served-message-index exchange rate.
MESSAGES_PER_SECOND = 200.0

#: Cap on an injected response delay, in real seconds, regardless of
#: what the schedule's ``max_delay`` (simulated seconds) says — wall
#: clocks are expensive.
REAL_DELAY_CAP = 0.02


@dataclass(frozen=True)
class _Window:
    """One chaos window in message-index coordinates."""

    start_seq: int
    end_seq: int
    drop: float
    duplicate: float
    delay: float
    max_delay: float

    def active(self, seq: int) -> bool:
        return self.start_seq <= seq < self.end_seq


class WireFaults:
    """Seeded per-message fault decisions for one worker process.

    Thread-safe: the serving threads call :meth:`decide` concurrently,
    and the sequence number is assigned under the same lock that draws
    from the RNG, so the decision *stream* is deterministic even though
    thread interleaving decides which request lands on which slot.
    """

    def __init__(
        self,
        seed: int,
        node_id: int,
        windows: tuple[_Window, ...],
        crash_seq: int | None = None,
        pressure_points: tuple[tuple[int, float], ...] = (),
    ) -> None:
        self.node_id = node_id
        self.windows = windows
        self.crash_seq = crash_seq
        #: ``(seq, factor)`` budget shrinks, ascending by seq; each
        #: fires once when the served-message counter crosses it.
        self.pressure_points = tuple(sorted(pressure_points))
        self._pressure_fired = 0
        self._rng = make_rng(seed, f"wire-{node_id}")
        self._lock = threading.Lock()
        self._seq = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.pressure_events = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_schedule(
        cls,
        schedule: FaultSchedule | None,
        node_id: int,
        rate: float = MESSAGES_PER_SECOND,
    ) -> "WireFaults | None":
        """The wire plan for worker ``node_id`` (``None`` = healthy).

        Chaos windows apply to every worker (link-level faults in the
        simulator have no single owner); a :class:`CrashFault` applies
        only to the worker whose ``node_id`` it names.
        """
        if schedule is None:
            return None
        windows = tuple(
            _Window(
                start_seq=int(chaos.at * rate),
                end_seq=max(int((chaos.at + chaos.duration) * rate), 1),
                drop=chaos.drop,
                duplicate=chaos.duplicate,
                delay=chaos.delay,
                max_delay=min(chaos.max_delay, REAL_DELAY_CAP),
            )
            for chaos in schedule.chaos
        )
        crash_seq: int | None = None
        for crash in schedule.crashes:
            if crash.node_id == node_id:
                # Crash just before this served message; at least one
                # message is always served first so the worker proves
                # it was alive.
                crash_seq = max(int(crash.at * rate), 1)
                break
        pressure_points = tuple(
            (max(int(pressure.at * rate), 1), pressure.factor)
            for pressure in schedule.memory_pressure
            if pressure.node_id == node_id
        )
        if not windows and crash_seq is None and not pressure_points:
            return None
        return cls(schedule.seed, node_id, windows, crash_seq, pressure_points)

    # ------------------------------------------------------------------
    def crash_pending(self) -> bool:
        """True exactly once: the scheduled crash point was reached."""
        if self.crash_seq is None:
            return False
        with self._lock:
            if self._seq >= self.crash_seq:
                return True
        return False

    def pressure_pending(self) -> float | None:
        """Shrink factor if a pressure point was crossed (fires once).

        Workers call this alongside :meth:`crash_pending` before each
        faultable operation and apply the returned factor to their
        local memory budget.
        """
        if self._pressure_fired >= len(self.pressure_points):
            return None
        with self._lock:
            seq, factor = self.pressure_points[self._pressure_fired]
            if self._seq >= seq:
                self._pressure_fired += 1
                self.pressure_events += 1
                return factor
        return None

    def decide(self) -> tuple[str, float]:
        """The fate of the next served response.

        Returns ``(action, delay_seconds)`` with action one of ``ok`` /
        ``drop`` / ``duplicate``; a nonzero delay may accompany ``ok``.
        """
        with self._lock:
            seq = self._seq
            self._seq += 1
            window = next(
                (w for w in self.windows if w.active(seq)), None
            )
            if window is None:
                return "ok", 0.0
            draw = float(self._rng.uniform(0.0, 1.0))
            delay_draw = float(self._rng.uniform(0.0, 1.0))
            if draw < window.drop:
                self.dropped += 1
                return "drop", 0.0
            if draw < window.drop + window.duplicate:
                self.duplicated += 1
                return "duplicate", 0.0
            if draw < window.drop + window.duplicate + window.delay:
                self.delayed += 1
                return "ok", delay_draw * window.max_delay
            return "ok", 0.0

    def counters(self) -> dict[str, int]:
        """Injected-fault counts (merged under ``cluster.wire.*``)."""
        with self._lock:
            return {
                "dropped": self.dropped,
                "duplicated": self.duplicated,
                "delayed": self.delayed,
                "pressure_events": self.pressure_events,
                "messages": self._seq,
            }


__all__ = ["MESSAGES_PER_SECOND", "REAL_DELAY_CAP", "WireFaults"]
