"""Per-run multi-tenancy configuration.

One frozen value gates the whole subsystem, mirroring
:class:`repro.resilience.ResilienceOptions`: with ``enabled=False``
(the default, and :meth:`TenancyOptions.off`) *nothing* is wired — no
tenant admission queues, no per-tenant accounting — and a run is
bit-identical to a pre-tenancy build.  The differential test in
``tests/test_tenancy.py`` enforces that across all four engines.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any


@dataclass(frozen=True)
class TenancyOptions:
    """Knobs for per-tenant admission, shedding and the replay adapter."""

    #: Master switch; ``False`` wires nothing at all.
    enabled: bool = False

    # -- engine-level admission -------------------------------------------
    #: ``True`` wires :class:`~repro.resilience.WeightedFairAdmission`
    #: (per-tenant queues, quotas, charged sheds); ``False`` wires the
    #: PR 4 global :class:`~repro.resilience.AdmissionController` — the
    #: baseline the tenancy benchmark compares against.
    fair: bool = True
    #: Max admitted-but-unfinished tuples per destination data node.
    #: ``None`` disables engine-level admission entirely (the harness
    #: replay adapter still applies its own fair queueing).
    queue_bound: int | None = 64
    #: Default seconds a parked tuple waits before being shed onto the
    #: cheap route; a tenant's SLO deadline (``TenantShare.deadline``)
    #: overrides this per tenant.  ``None`` = drain on completions only.
    shed_deadline: float | None = None
    #: Max *live* parked tuples per destination; arrivals past it are
    #: shed immediately (queue-full, charged to the arriving tenant).
    park_capacity: int | None = None

    # -- replay adapter (harness-level, any backend) ----------------------
    #: Service-window width in seconds for the windowed replay runner.
    window: float = 0.25
    #: Requests admitted per service window by the replay runner.
    window_capacity: int = 64

    def __post_init__(self) -> None:
        if self.queue_bound is not None and self.queue_bound < 1:
            raise ValueError("queue_bound must be >= 1")
        if self.shed_deadline is not None and self.shed_deadline < 0:
            raise ValueError("shed_deadline must be non-negative")
        if self.park_capacity is not None and self.park_capacity < 0:
            raise ValueError("park_capacity must be non-negative")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.window_capacity < 1:
            raise ValueError("window_capacity must be >= 1")

    @classmethod
    def off(cls) -> "TenancyOptions":
        """Explicitly disabled — bit-identical to a pre-tenancy run."""
        return cls(enabled=False)

    @classmethod
    def on(cls, **overrides: Any) -> "TenancyOptions":
        """Enabled with defaults; keyword overrides for any knob."""
        return replace(cls(enabled=True), **overrides)
