"""repro.tenancy — multi-tenant open-loop traffic over the join stack.

ROADMAP item 5: drive the full system (router, placement, memory
arbiter, all three backends) with many tenants at once — each with its
own seeded arrival process, Zipf key slice, request-size mix and SLO —
and prove per-tenant SLO attainment under contention.

* :mod:`~repro.tenancy.traffic` — seeded arrival processes (Poisson
  base, diurnal modulation, flash crowds) and rolling update waves.
* :mod:`~repro.tenancy.tenant` — :class:`TenantSpec` / :class:`SLO` /
  :class:`TenantMix`, and trace materialization.
* :mod:`~repro.tenancy.options` — :class:`TenancyOptions` on
  :class:`repro.api.RunConfig`; ``off()`` is bit-identical.
* :mod:`~repro.tenancy.report` — :class:`TenancyReport` (`tenancy.*`
  metrics, attainment/shed/percentile table).
* :mod:`~repro.tenancy.runner` — the Runner/Router port-adapter seam
  (:class:`SimRunner` open loop, :class:`ReplayRunner` any backend).

Everything except :class:`TenancyOptions` is imported lazily:
``repro.engine.job`` imports ``repro.tenancy.options`` (which triggers
this ``__init__``), while ``tenant``/``runner`` reach back through
``repro.workloads`` / ``repro.api`` into the engine — eager imports
here would cycle.  ``options`` itself is dependency-free.
"""

from repro.tenancy.options import TenancyOptions

__all__ = [
    "ArrivalProcess",
    "FlashCrowd",
    "ReplayRunner",
    "SLO",
    "SimRunner",
    "TenancyOptions",
    "TenancyReport",
    "TenancyResult",
    "TenantMix",
    "TenantSpec",
    "TenantStats",
    "TrafficRunner",
    "TrafficTrace",
    "UpdateWave",
    "attainment",
    "make_runner",
    "mix_workload",
    "percentile",
]

#: Lazy exports: name -> owning submodule.
_LAZY = {
    "ArrivalProcess": "traffic",
    "FlashCrowd": "traffic",
    "UpdateWave": "traffic",
    "SLO": "tenant",
    "TenantMix": "tenant",
    "TenantSpec": "tenant",
    "TrafficTrace": "tenant",
    "attainment": "tenant",
    "percentile": "tenant",
    "TenancyReport": "report",
    "TenantStats": "report",
    "ReplayRunner": "runner",
    "SimRunner": "runner",
    "TenancyResult": "runner",
    "TrafficRunner": "runner",
    "make_runner": "runner",
    "mix_workload": "runner",
}


def __getattr__(name: str):
    submodule = _LAZY.get(name)
    if submodule is not None:
        import importlib

        module = importlib.import_module(f"repro.tenancy.{submodule}")
        return getattr(module, name)
    raise AttributeError(f"module 'repro.tenancy' has no attribute {name!r}")


def __dir__() -> list:
    return sorted(set(__all__) | set(globals()))
