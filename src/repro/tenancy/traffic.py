"""Open-loop traffic: seeded arrival processes and data-update waves.

The paper evaluates join-location decisions under streaming arrival
rates; this module generates those arrivals as *values* — a list of
timestamps — so the same trace can drive the simulated engines, the
thread-pool backend and the real-process cluster unchanged.

The base process is Poisson (exponential inter-arrivals).  Two
modulations compose multiplicatively on top:

* **diurnal** — a sinusoid over :attr:`ArrivalProcess.diurnal_period`
  seconds, amplitude in ``[0, 1]``, modelling the day/night swing of a
  user-facing tenant;
* **flash crowds** — :class:`FlashCrowd` windows multiplying the rate
  (a product launch, a retry storm, an abusive tenant).

Non-homogeneous sampling uses Lewis–Shedler thinning against the
process's peak rate, so the output is an exact draw from the modulated
intensity, deterministic under a fixed seed.

:class:`UpdateWave` generates rolling data-store update batches — the
paper's Section 4.2.3 dynamic-data scenario — as ``(time, key,
new_value)`` triples that plug straight into ``JoinJob.run(updates=)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FlashCrowd:
    """A transient rate multiplier: ``rate *= multiplier`` in the window."""

    start: float
    duration: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError("need start >= 0 and duration > 0")
        if self.multiplier <= 0:
            raise ValueError("multiplier must be positive")

    def active_at(self, t: float) -> bool:
        return self.start <= t < self.start + self.duration


@dataclass(frozen=True)
class ArrivalProcess:
    """A seeded, modulated Poisson arrival process.

    Examples
    --------
    >>> process = ArrivalProcess(rate=100.0)
    >>> rng = np.random.default_rng(7)
    >>> times = process.arrivals(10.0, rng)
    >>> bool((times[:-1] <= times[1:]).all())
    True
    >>> 800 < len(times) < 1200
    True
    """

    #: Base arrivals per second.
    rate: float
    #: Sinusoid amplitude in ``[0, 1)`` — 0 disables the diurnal curve.
    diurnal_amplitude: float = 0.0
    #: Seconds per diurnal cycle (default scaled down from 24 h so short
    #: simulated horizons still see the swing).
    diurnal_period: float = 60.0
    #: Phase offset in radians (lets tenants peak at different times).
    diurnal_phase: float = 0.0
    flash_crowds: tuple[FlashCrowd, ...] = ()

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period <= 0:
            raise ValueError("diurnal_period must be positive")

    # ------------------------------------------------------------------
    # Intensity
    # ------------------------------------------------------------------
    def rate_at(self, t: float) -> float:
        """Instantaneous intensity at simulated time ``t``."""
        rate = self.rate
        if self.diurnal_amplitude:
            rate *= 1.0 + self.diurnal_amplitude * math.sin(
                2.0 * math.pi * t / self.diurnal_period + self.diurnal_phase
            )
        for crowd in self.flash_crowds:
            if crowd.active_at(t):
                rate *= crowd.multiplier
        return rate

    def peak_rate(self) -> float:
        """An upper bound on :meth:`rate_at` (the thinning envelope)."""
        peak = self.rate * (1.0 + self.diurnal_amplitude)
        boost = 1.0
        for crowd in self.flash_crowds:
            boost *= max(1.0, crowd.multiplier)
        return peak * boost

    def expected_count(self, horizon: float, resolution: int = 512) -> float:
        """Numerical ``∫ rate_at`` over ``[0, horizon)`` (for tests)."""
        if horizon <= 0:
            return 0.0
        step = horizon / resolution
        return step * sum(
            self.rate_at((i + 0.5) * step) for i in range(resolution)
        )

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def arrivals(
        self, horizon: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw one arrival-time array over ``[0, horizon)``.

        Lewis–Shedler thinning: candidate arrivals are drawn from a
        homogeneous Poisson process at :meth:`peak_rate` and kept with
        probability ``rate_at(t) / peak``.  Deterministic for a fixed
        ``rng`` state.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        peak = self.peak_rate()
        times: list[float] = []
        t = 0.0
        while True:
            t += rng.exponential(1.0 / peak)
            if t >= horizon:
                break
            if rng.random() * peak <= self.rate_at(t):
                times.append(t)
        return np.asarray(times, dtype=np.float64)


@dataclass(frozen=True)
class UpdateWave:
    """Rolling data-store updates sweeping through the keyspace.

    Wave ``w`` (at ``start + w * interval``) rewrites a contiguous
    ``fraction`` of the key universe, starting where wave ``w - 1``
    stopped — after ``1 / fraction`` waves every key has been touched
    once, the adversarial pattern for any cached copy.
    """

    start: float
    interval: float
    waves: int
    #: Fraction of the key universe rewritten per wave.
    fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.start < 0 or self.interval <= 0 or self.waves < 1:
            raise ValueError(
                "need start >= 0, interval > 0 and waves >= 1"
            )
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")

    def updates(self, n_keys: int) -> list[tuple[float, int, str]]:
        """``(time, key, new_value)`` triples for ``JoinJob.run(updates=)``."""
        if n_keys < 1:
            raise ValueError("n_keys must be >= 1")
        per_wave = max(1, int(n_keys * self.fraction))
        out: list[tuple[float, int, str]] = []
        cursor = 0
        for wave in range(self.waves):
            at = self.start + wave * self.interval
            for offset in range(per_wave):
                key = (cursor + offset) % n_keys
                out.append((at, key, f"v{key}@w{wave}"))
            cursor = (cursor + per_wave) % n_keys
        return out
