"""Tenants: key distributions, request-size mixes, SLOs, and the mix.

A :class:`TenantSpec` describes one tenant of the shared store: its
arrival process (:mod:`repro.tenancy.traffic`), its Zipf skew over a
private *slice* of the shared key universe (reusing the
``repro.workloads.zipf`` samplers), a request-size mix (one logical
request fans out into 1..k join tuples), an admission weight/quota, and
an :class:`SLO` — a latency deadline plus the fraction of requests that
must meet it.

:meth:`TenantMix.trace` materializes the whole mix into one
:class:`TrafficTrace` — a merged, time-sorted sequence of per-tuple
``(arrival, tenant, key)`` plus rolling data-update events — that any
backend can replay.  Everything is seeded through
:func:`repro.sim.rng.make_rng` with per-tenant labels, so adding a
tenant never perturbs the streams of existing ones.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.resilience.admission import TenantShare
from repro.sim.rng import derive_seed, make_rng
from repro.tenancy.traffic import ArrivalProcess, UpdateWave
from repro.workloads.zipf import sliced_zipf_keys


@dataclass(frozen=True)
class SLO:
    """A latency service-level objective.

    ``deadline`` is the arrival-to-completion budget in seconds;
    ``target`` is the fraction of requests that must finish inside it
    (attainment).  A tenant *meets* its SLO when attainment >= target.
    """

    deadline: float
    target: float = 0.95

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if not 0.0 < self.target <= 1.0:
            raise ValueError("target must be in (0, 1]")

    def met(self, attainment: float) -> bool:
        return attainment >= self.target


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's workload shape and service contract."""

    name: str
    arrivals: ArrivalProcess
    #: Zipf exponent inside the tenant's keyspace slice.
    skew: float = 0.8
    #: ``[key_lo, key_hi)`` slice of the shared key universe; ``None``
    #: spans the whole universe.
    keyspace: tuple[int, int] | None = None
    #: Weighted-fair admission weight (relative share under contention).
    weight: float = 1.0
    #: Hard in-flight quota per data node (``None`` = no ceiling).
    quota: int | None = None
    slo: SLO = field(default_factory=lambda: SLO(deadline=0.5))
    #: Request-size mix: ``(probability_weight, tuples_per_request)``
    #: pairs; each arrival draws a size and fans into that many join
    #: tuples at the same instant.
    size_mix: tuple[tuple[float, int], ...] = ((1.0, 1),)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.quota is not None and self.quota < 1:
            raise ValueError("quota must be >= 1")
        if self.skew < 0:
            raise ValueError("skew must be non-negative")
        if self.keyspace is not None:
            lo, hi = self.keyspace
            if lo < 0 or hi <= lo:
                raise ValueError("keyspace must satisfy 0 <= lo < hi")
        if not self.size_mix:
            raise ValueError("size_mix must be non-empty")
        for probability, size in self.size_mix:
            if probability <= 0 or size < 1:
                raise ValueError(
                    "size_mix entries need probability > 0 and size >= 1"
                )

    def share(self) -> TenantShare:
        """The tenant's admission share; shed deadline = SLO deadline
        (work that already missed its SLO should stop loading the hot
        server and take the cheap route instead)."""
        return TenantShare(
            weight=self.weight, quota=self.quota, deadline=self.slo.deadline
        )


@dataclass(frozen=True)
class TrafficTrace:
    """A materialized multi-tenant trace, one entry per join tuple.

    ``arrivals`` is non-decreasing; ``tenants[i]`` / ``keys[i]`` give
    tuple ``i``'s owner and join key.  ``updates`` are the rolling
    data-store rewrites, ready for ``JoinJob.run_trace(updates=)``.
    """

    arrivals: tuple[float, ...]
    tenants: tuple[str, ...]
    keys: tuple[int, ...]
    updates: tuple[tuple[float, int, str], ...]
    n_keys: int
    horizon: float
    seed: int

    def __len__(self) -> int:
        return len(self.arrivals)

    def tenant_of(self, tuple_id: int) -> str:
        """``tuple_id -> tenant`` (the fair-admission charging map)."""
        return self.tenants[tuple_id]

    def tenant_ids(self, tenant: str) -> list[int]:
        return [i for i, t in enumerate(self.tenants) if t == tenant]

    def offered_load(self) -> dict[str, int]:
        """Tuples per tenant over the horizon."""
        counts: dict[str, int] = {}
        for tenant in self.tenants:
            counts[tenant] = counts.get(tenant, 0) + 1
        return counts

    def slice_until(self, t: float) -> int:
        """Index of the first arrival at or after ``t``."""
        return bisect.bisect_left(self.arrivals, t)


@dataclass(frozen=True)
class TenantMix:
    """A set of tenants sharing one key universe (and one cluster)."""

    tenants: tuple[TenantSpec, ...]
    #: Size of the shared key universe.
    n_keys: int = 4096
    #: Rolling data-update waves applied to the shared store mid-run.
    updates: tuple[UpdateWave, ...] = ()

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("need at least one tenant")
        if self.n_keys < 1:
            raise ValueError("n_keys must be >= 1")
        names = [spec.name for spec in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError("tenant names must be unique")
        for spec in self.tenants:
            if spec.keyspace is not None and spec.keyspace[1] > self.n_keys:
                raise ValueError(
                    f"tenant {spec.name!r} keyspace exceeds the universe"
                )

    def spec(self, name: str) -> TenantSpec:
        for candidate in self.tenants:
            if candidate.name == name:
                return candidate
        raise KeyError(name)

    def shares(self) -> dict[str, TenantShare]:
        """Per-tenant admission shares for ``WeightedFairAdmission``."""
        return {spec.name: spec.share() for spec in self.tenants}

    def slos(self) -> dict[str, SLO]:
        return {spec.name: spec.slo for spec in self.tenants}

    @classmethod
    def even_split(
        cls,
        specs: tuple[TenantSpec, ...],
        n_keys: int = 4096,
        updates: tuple[UpdateWave, ...] = (),
    ) -> "TenantMix":
        """Assign each tenant an equal contiguous keyspace slice."""
        width = n_keys // len(specs)
        if width < 1:
            raise ValueError("n_keys too small for the tenant count")
        sliced = []
        for index, spec in enumerate(specs):
            lo = index * width
            hi = n_keys if index == len(specs) - 1 else lo + width
            sliced.append(
                TenantSpec(
                    name=spec.name,
                    arrivals=spec.arrivals,
                    skew=spec.skew,
                    keyspace=(lo, hi),
                    weight=spec.weight,
                    quota=spec.quota,
                    slo=spec.slo,
                    size_mix=spec.size_mix,
                )
            )
        return cls(tenants=tuple(sliced), n_keys=n_keys, updates=updates)

    # ------------------------------------------------------------------
    # Trace generation
    # ------------------------------------------------------------------
    def trace(self, horizon: float, seed: int = 0) -> TrafficTrace:
        """Materialize the mix into one merged, time-sorted trace.

        Per tenant, three independent child streams are derived from
        ``seed`` and the tenant name — arrival times, request sizes,
        join keys — so tenants are statistically independent and the
        whole trace is bit-reproducible.  The merge orders ties by
        tenant name, keeping the result deterministic.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        entries: list[tuple[float, str, int]] = []
        for spec in sorted(self.tenants, key=lambda s: s.name):
            times = spec.arrivals.arrivals(
                horizon, make_rng(seed, f"tenancy-arrivals:{spec.name}")
            )
            sizes_rng = make_rng(seed, f"tenancy-sizes:{spec.name}")
            mix_sizes = [size for _, size in spec.size_mix]
            weights = [probability for probability, _ in spec.size_mix]
            total_weight = sum(weights)
            probabilities = [w / total_weight for w in weights]
            if len(mix_sizes) == 1:
                sizes = [mix_sizes[0]] * len(times)
            else:
                sizes = [
                    int(s)
                    for s in sizes_rng.choice(
                        mix_sizes, size=len(times), p=probabilities
                    )
                ]
            lo, hi = spec.keyspace if spec.keyspace else (0, self.n_keys)
            n_tuples = int(sum(sizes))
            keys = sliced_zipf_keys(
                n_tuples,
                key_lo=lo,
                key_hi=hi,
                skew=spec.skew,
                seed=derive_seed(seed, f"tenancy-keys:{spec.name}"),
            )
            cursor = 0
            for at, size in zip(times, sizes):
                for key in keys[cursor:cursor + size]:
                    entries.append((float(at), spec.name, int(key)))
                cursor += size
        entries.sort(key=lambda e: (e[0], e[1]))
        update_events: list[tuple[float, int, str]] = []
        for wave in self.updates:
            update_events.extend(wave.updates(self.n_keys))
        update_events.sort(key=lambda e: (e[0], e[1]))
        return TrafficTrace(
            arrivals=tuple(e[0] for e in entries),
            tenants=tuple(e[1] for e in entries),
            keys=tuple(e[2] for e in entries),
            updates=tuple(update_events),
            n_keys=self.n_keys,
            horizon=horizon,
            seed=seed,
        )


def attainment(latencies: list[float], deadline: float) -> float:
    """Fraction of requests that met ``deadline`` (1.0 when empty)."""
    if not latencies:
        return 1.0
    met = sum(1 for latency in latencies if latency <= deadline)
    return met / len(latencies)


def percentile(latencies: list[float], q: float) -> float:
    """Latency at percentile ``q`` in [0, 100] (0.0 when empty)."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    index = min(int(len(ordered) * q / 100.0), len(ordered) - 1)
    return ordered[index]


__all__ = [
    "SLO",
    "TenantMix",
    "TenantSpec",
    "TrafficTrace",
    "attainment",
    "percentile",
]
