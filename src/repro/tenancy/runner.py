"""Runner/Router seam: one tenant mix, any backend.

The port is :class:`TrafficRunner` — ``run(mix, trace) ->``
:class:`TenancyResult` — and two adapters implement it:

* :class:`SimRunner` — the true open-loop adapter.  Drives the
  ``engine`` runner on the discrete-event simulator through
  ``JoinJob.run_trace``: every tuple arrives at its trace timestamp,
  per-tenant weighted-fair admission runs *inside* each compute node
  (:class:`~repro.resilience.WeightedFairAdmission`), and per-request
  latency is exact simulated arrival-to-completion.
* :class:`ReplayRunner` — the portable adapter.  Replays the same
  trace in fixed service windows against :func:`repro.api.run_join`,
  so the identical tenant mix drives **SimBackend, LocalBackend and
  ClusterBackend unchanged**: the fair queueing (stride scheduling
  over per-tenant FIFOs, quotas, deadline sheds charged to the
  offending tenant) happens in the harness, and each window is one
  ordinary ``run_join`` call.  A window that takes longer than its
  width pushes the clock — overload queues, exactly like a real
  ingest pipeline behind a slow executor.

Both adapters account sheds the engine way: shed work is *served
degraded, never dropped*, so completions always equal offered load and
correctness is untouched.

:func:`make_runner` is the router: it picks the open-loop adapter when
the configuration supports it (``engine`` on ``sim``) and the replay
adapter everywhere else.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field, replace
from typing import Any, Protocol, runtime_checkable

from repro.api import JobSpec, RunConfig, run_join
from repro.obs.registry import MetricsRegistry, ambient_registry
from repro.resilience.admission import WeightedFairAdmission
from repro.runtime.backend import JoinWorkload
from repro.tenancy.options import TenancyOptions
from repro.tenancy.report import TenancyReport
from repro.tenancy.tenant import TenantMix, TrafficTrace
from repro.workloads.synthetic import SyntheticWorkload

#: Hard ceiling on replay windows — a stalled backend must fail loudly,
#: not spin the harness forever.
_MAX_WINDOWS = 100_000


@dataclass(frozen=True)
class TenancyResult:
    """Outcome of one tenant-mix run on one backend."""

    backend: str
    engine: str
    #: Whether weighted-fair admission ran (vs the global baseline).
    fair: bool
    duration: float
    report: TenancyReport
    latencies_by_tenant: dict[str, list[float]] = field(repr=False)
    shed_by_tenant: dict[str, int] = field(repr=False)
    total_shed: int = 0
    #: Merged real outputs by global tuple index (replay adapter only;
    #: the open-loop adapter runs the timing UDF).
    outputs: dict[int, Any] = field(repr=False, default_factory=dict)


@runtime_checkable
class TrafficRunner(Protocol):
    """The port: anything that can serve a tenant mix."""

    def run(self, mix: TenantMix, trace: TrafficTrace) -> TenancyResult:
        """Serve the trace to completion and report per-tenant stats."""
        ...


def mix_workload(
    mix: TenantMix,
    value_size: float = 20_000.0,
    compute_cost: float = 0.002,
    seed: int = 0,
) -> SyntheticWorkload:
    """The stored-relation substrate a tenant mix joins against."""
    return SyntheticWorkload(
        name="tenancy",
        n_keys=mix.n_keys,
        n_tuples=0,
        skew=0.0,
        value_size=value_size,
        compute_cost=compute_cost,
        seed=seed,
    )


@dataclass
class SimRunner:
    """Open-loop adapter: ``engine`` on the simulator, per-tuple arrivals."""

    config: RunConfig
    workload: SyntheticWorkload | None = None
    registry: MetricsRegistry | None = None

    def __post_init__(self) -> None:
        if self.config.backend != "sim" or self.config.engine != "engine":
            raise ValueError(
                "SimRunner needs backend='sim', engine='engine'; use "
                "ReplayRunner (or make_runner) for other configurations"
            )

    def run(self, mix: TenantMix, trace: TrafficTrace) -> TenancyResult:
        from repro.engine.job import JoinJob
        from repro.engine.strategies import Strategy
        from repro.sim.cluster import Cluster

        cfg = self.config
        tenancy = cfg.tenancy if cfg.tenancy.enabled else None
        workload = (
            self.workload
            if self.workload is not None
            else mix_workload(mix, seed=cfg.seed)
        )
        if workload.n_keys < mix.n_keys:
            raise ValueError("workload key universe smaller than the mix's")
        cluster = Cluster.homogeneous(cfg.n_compute + cfg.n_data)
        job = JoinJob(
            cluster=cluster,
            compute_nodes=list(range(cfg.n_compute)),
            data_nodes=list(
                range(cfg.n_compute, cfg.n_compute + cfg.n_data)
            ),
            table=workload.build_table(),
            udf=workload.udf,
            strategy=Strategy.by_name("FO"),
            sizes=workload.sizes,
            batch_size=cfg.batching.batch_size,
            max_wait=cfg.batching.max_wait,
            vector_width=cfg.batching.vector_width,
            columnar=cfg.batching.columnar,
            memory_cache_bytes=cfg.memory_cache_bytes,
            resilience=cfg.resilience if cfg.resilience.enabled else None,
            tenancy=tenancy,
            tenant_of=trace.tenant_of if tenancy is not None else None,
            tenant_shares=mix.shares() if tenancy is not None else None,
            seed=cfg.seed,
        )
        result = job.run_trace(
            list(trace.keys),
            list(trace.arrivals),
            updates=list(trace.updates) or None,
        )
        latencies: dict[str, list[float]] = defaultdict(list)
        for index, tenant in enumerate(trace.tenants):
            latencies[tenant].append(result.latencies[index])
        shed_by_tenant: dict[str, int] = defaultdict(int)
        total_shed = 0
        for runtime in job.runtimes.values():
            admission = runtime.admission
            if admission is None:
                continue
            total_shed += admission.shed_count
            if isinstance(admission, WeightedFairAdmission):
                for tenant, count in admission.shed_by_tenant.items():
                    shed_by_tenant[tenant] += count
        report = TenancyReport.build(
            dict(latencies), dict(shed_by_tenant), mix.slos(), result.duration
        )
        report.publish(ambient_registry())
        if self.registry is not None:
            report.publish(self.registry)
        return TenancyResult(
            backend="sim",
            engine="engine",
            fair=tenancy is not None and tenancy.fair,
            duration=result.duration,
            report=report,
            latencies_by_tenant=dict(latencies),
            shed_by_tenant=dict(shed_by_tenant),
            total_shed=total_shed,
        )


@dataclass
class ReplayRunner:
    """Windowed replay adapter: the same mix on any ``run_join`` backend.

    Time is sliced into service windows of ``tenancy.window`` seconds.
    Arrivals park in per-tenant FIFOs; at each window boundary up to
    ``tenancy.window_capacity`` requests are drafted — weighted-fair
    (stride scheduling with per-window quotas) when ``tenancy.fair``,
    global FIFO by arrival otherwise — and executed as one ``run_join``
    batch.  A request drafted after its tenant's SLO deadline has
    already passed counts as a shed *charged to that tenant* (it is
    still served).  The window's measured duration pushes the clock, so
    a backend slower than the offered rate builds a real queue.
    """

    config: RunConfig
    workload: SyntheticWorkload | None = None
    registry: MetricsRegistry | None = None

    def _base_spec(self, mix: TenantMix) -> JobSpec:
        workload = (
            self.workload
            if self.workload is not None
            else mix_workload(mix, seed=self.config.seed)
        )
        if workload.n_keys < mix.n_keys:
            raise ValueError("workload key universe smaller than the mix's")
        return JobSpec.from_workload(JoinWorkload.from_synthetic(workload))

    def run(self, mix: TenantMix, trace: TrafficTrace) -> TenancyResult:
        cfg = self.config
        tenancy = cfg.tenancy if cfg.tenancy.enabled else TenancyOptions.on()
        fair = tenancy.fair
        base_spec = self._base_spec(mix)
        # Per-window runs must not re-apply tenancy inside the backend:
        # the harness owns admission here.
        window_cfg = replace(cfg, tenancy=TenancyOptions.off())
        shares = mix.shares()
        slos = mix.slos()
        names = sorted(share for share in shares)
        weights = {name: shares[name].weight for name in names}
        quotas = {name: shares[name].quota for name in names}
        pending: dict[str, deque[tuple[float, int]]] = {
            name: deque() for name in names
        }
        vtime: dict[str, float] = {name: 0.0 for name in names}
        latencies: dict[str, list[float]] = {name: [] for name in names}
        shed_by_tenant: dict[str, int] = {name: 0 for name in names}
        outputs: dict[int, Any] = {}
        clock = 0.0
        cursor = 0
        total = len(trace)
        total_shed = 0
        windows = 0
        while cursor < total or any(pending[name] for name in names):
            if windows >= _MAX_WINDOWS:
                raise RuntimeError(
                    f"replay exceeded {_MAX_WINDOWS} service windows"
                )
            windows += 1
            window_end = clock + tenancy.window
            while cursor < total and trace.arrivals[cursor] < window_end:
                tenant = trace.tenants[cursor]
                pending[tenant].append((trace.arrivals[cursor], cursor))
                cursor += 1
            drafted = self._draft(
                pending, names, weights, quotas, vtime,
                tenancy.window_capacity, fair,
            )
            if not drafted:
                # Idle window: jump straight to the next arrival.
                if cursor < total:
                    next_arrival = trace.arrivals[cursor]
                    if next_arrival >= window_end:
                        skipped = int(
                            (next_arrival - clock) / tenancy.window
                        )
                        window_end = clock + (skipped + 1) * tenancy.window
                clock = window_end
                continue
            for arrival, index in drafted:
                tenant = trace.tenants[index]
                slo = slos.get(tenant)
                if slo is not None and window_end - arrival > slo.deadline:
                    shed_by_tenant[tenant] += 1
                    total_shed += 1
            window_keys = tuple(trace.keys[index] for _, index in drafted)
            spec = replace(base_spec, keys=window_keys, params=None)
            run = run_join(spec, window_cfg)
            completion = window_end + run.makespan
            for local, (arrival, index) in enumerate(drafted):
                tenant = trace.tenants[index]
                latencies[tenant].append(completion - arrival)
                if local in run.outputs:
                    outputs[index] = run.outputs[local]
            # A slow window pushes the next one back (queue builds).
            clock = max(window_end, completion)
        report = TenancyReport.build(
            latencies, shed_by_tenant, slos, clock
        )
        report.publish(ambient_registry())
        if self.registry is not None:
            report.publish(self.registry)
        return TenancyResult(
            backend=cfg.backend,
            engine=cfg.engine,
            fair=fair,
            duration=clock,
            report=report,
            latencies_by_tenant=latencies,
            shed_by_tenant=shed_by_tenant,
            total_shed=total_shed,
            outputs=outputs,
        )

    @staticmethod
    def _draft(
        pending: dict[str, deque[tuple[float, int]]],
        names: list[str],
        weights: dict[str, float],
        quotas: dict[str, int | None],
        vtime: dict[str, float],
        capacity: int,
        fair: bool,
    ) -> list[tuple[float, int]]:
        """Pick up to ``capacity`` requests for one service window."""
        drafted: list[tuple[float, int]] = []
        if not fair:
            # PR 4 baseline semantics: one global FIFO by arrival time
            # (ties broken by tenant name via the stable merge order).
            candidates = [
                (queue[0], name)
                for name, queue in pending.items()
                if queue
            ]
            while candidates and len(drafted) < capacity:
                candidates.sort(key=lambda c: (c[0][0], c[0][1]))
                (entry, name) = candidates.pop(0)
                drafted.append(pending[name].popleft())
                if pending[name]:
                    candidates.append((pending[name][0], name))
            drafted.sort(key=lambda e: e[1])
            return drafted
        taken: dict[str, int] = {name: 0 for name in names}
        while len(drafted) < capacity:
            best: str | None = None
            best_rank: tuple[float, str] | None = None
            for name in names:
                if not pending[name]:
                    continue
                quota = quotas[name]
                if quota is not None and taken[name] >= quota:
                    continue
                rank = (vtime[name], name)
                if best_rank is None or rank < best_rank:
                    best, best_rank = name, rank
            if best is None:
                break
            drafted.append(pending[best].popleft())
            taken[best] += 1
            vtime[best] += 1.0 / weights[best]
        drafted.sort(key=lambda e: e[1])
        return drafted


def make_runner(
    config: RunConfig,
    workload: SyntheticWorkload | None = None,
    registry: MetricsRegistry | None = None,
    mode: str = "auto",
) -> TrafficRunner:
    """The router: pick the adapter for this configuration.

    ``mode='engine'`` forces the open-loop :class:`SimRunner`,
    ``mode='replay'`` forces the :class:`ReplayRunner`; ``'auto'``
    uses the open-loop adapter exactly when the configuration can
    support it (``engine`` on ``sim``) and replay otherwise — so one
    call site drives all three backends unchanged.
    """
    if mode not in ("auto", "engine", "replay"):
        raise ValueError(
            f"unknown mode {mode!r}; expected 'auto', 'engine' or 'replay'"
        )
    engine_capable = config.backend == "sim" and config.engine == "engine"
    if mode == "engine" or (mode == "auto" and engine_capable):
        return SimRunner(
            config=config, workload=workload, registry=registry
        )
    return ReplayRunner(config=config, workload=workload, registry=registry)


__all__ = [
    "ReplayRunner",
    "SimRunner",
    "TenancyResult",
    "TrafficRunner",
    "make_runner",
    "mix_workload",
]
