"""Per-tenant outcome accounting: attainment, sheds, percentiles.

:class:`TenancyReport` is the one artifact every tenancy run produces:
per-tenant offered load, completions, sheds charged, SLO attainment
and latency percentiles, plus the aggregate view the fairness gate
needs ("no tenant's attainment collapses while another's quota sits
unused").  It publishes into the metrics registry under the
``tenancy.*`` family and renders a human-readable table.

A *shed* here is never a dropped request — the engine degrades shed
work onto the cheap route and still completes it — so ``completed``
counts every request and ``shed`` counts how many of them were served
degraded, charged to the tenant that over-drove its share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.obs.registry import MetricsRegistry, ambient_registry
from repro.tenancy.tenant import SLO, attainment, percentile


@dataclass(frozen=True)
class TenantStats:
    """One tenant's outcome over a run."""

    tenant: str
    offered: int
    completed: int
    shed: int
    attainment: float
    p50: float
    p99: float
    mean_latency: float
    slo_deadline: float | None = None
    slo_target: float | None = None

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def slo_met(self) -> bool | None:
        """Whether the SLO held (``None`` when no SLO was configured)."""
        if self.slo_target is None:
            return None
        return self.attainment >= self.slo_target


@dataclass(frozen=True)
class TenancyReport:
    """Per-tenant stats plus the aggregate, for one tenancy run."""

    duration: float
    tenants: tuple[TenantStats, ...]

    @classmethod
    def build(
        cls,
        latencies_by_tenant: Mapping[str, list[float]],
        shed_by_tenant: Mapping[str, int],
        slos: Mapping[str, SLO],
        duration: float,
    ) -> "TenancyReport":
        """Assemble the report from per-tenant latency lists.

        ``latencies_by_tenant`` holds every completed request's
        arrival-to-completion latency; attainment is measured against
        each tenant's SLO deadline (1.0 when the tenant has no SLO).
        """
        stats = []
        for tenant in sorted(latencies_by_tenant):
            latencies = latencies_by_tenant[tenant]
            slo = slos.get(tenant)
            stats.append(
                TenantStats(
                    tenant=tenant,
                    offered=len(latencies),
                    completed=len(latencies),
                    shed=int(shed_by_tenant.get(tenant, 0)),
                    attainment=(
                        attainment(latencies, slo.deadline) if slo else 1.0
                    ),
                    p50=percentile(latencies, 50.0),
                    p99=percentile(latencies, 99.0),
                    mean_latency=(
                        sum(latencies) / len(latencies) if latencies else 0.0
                    ),
                    slo_deadline=slo.deadline if slo else None,
                    slo_target=slo.target if slo else None,
                )
            )
        return cls(duration=duration, tenants=tuple(stats))

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def stats(self, tenant: str) -> TenantStats:
        for candidate in self.tenants:
            if candidate.tenant == tenant:
                return candidate
        raise KeyError(tenant)

    @property
    def total_completed(self) -> int:
        return sum(stats.completed for stats in self.tenants)

    @property
    def aggregate_throughput(self) -> float:
        """Completed requests per second across all tenants."""
        if self.duration <= 0:
            return 0.0
        return self.total_completed / self.duration

    @property
    def worst_attainment(self) -> float:
        if not self.tenants:
            return 1.0
        return min(stats.attainment for stats in self.tenants)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def publish(self, registry: MetricsRegistry | None = None) -> None:
        """Emit ``tenancy.*`` per-tenant metrics into the registry.

        Counters for volumes (offered / completed / shed), gauges for
        the derived ratios and percentiles, and one latency histogram
        per tenant — the same naming scheme as the other families so
        ``render_run_report`` picks the section up by prefix.
        """
        registry = registry if registry is not None else ambient_registry()
        for stats in self.tenants:
            prefix = f"tenancy.{stats.tenant}"
            registry.counter(f"{prefix}.offered").inc(stats.offered)
            registry.counter(f"{prefix}.completed").inc(stats.completed)
            registry.counter(f"{prefix}.shed").inc(stats.shed)
            registry.gauge(f"{prefix}.attainment").set(stats.attainment)
            registry.gauge(f"{prefix}.shed_rate").set(stats.shed_rate)
            registry.gauge(f"{prefix}.latency_p50").set(stats.p50)
            registry.gauge(f"{prefix}.latency_p99").set(stats.p99)
            histogram = registry.histogram(f"{prefix}.latency")
            if stats.completed:
                histogram.observe(stats.mean_latency)
        registry.gauge("tenancy.worst_attainment").set(self.worst_attainment)
        registry.gauge("tenancy.aggregate_throughput").set(
            self.aggregate_throughput
        )

    def payload(self) -> dict:
        """JSON-serializable form (the benchmark artifact rows)."""
        return {
            "duration": self.duration,
            "aggregate_throughput": self.aggregate_throughput,
            "worst_attainment": self.worst_attainment,
            "tenants": {
                stats.tenant: {
                    "offered": stats.offered,
                    "completed": stats.completed,
                    "shed": stats.shed,
                    "shed_rate": stats.shed_rate,
                    "attainment": stats.attainment,
                    "p50": stats.p50,
                    "p99": stats.p99,
                    "mean_latency": stats.mean_latency,
                    "slo_deadline": stats.slo_deadline,
                    "slo_target": stats.slo_target,
                    "slo_met": stats.slo_met,
                }
                for stats in self.tenants
            },
        }

    def render(self) -> str:
        """Human-readable per-tenant table."""
        lines = ["## Tenancy", ""]
        header = (
            f"{'tenant':<12} {'offered':>8} {'shed':>6} {'attain':>7} "
            f"{'p50':>9} {'p99':>9} {'slo':>5}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for stats in self.tenants:
            met = (
                "-" if stats.slo_met is None
                else ("ok" if stats.slo_met else "MISS")
            )
            lines.append(
                f"{stats.tenant:<12} {stats.offered:>8} {stats.shed:>6} "
                f"{stats.attainment:>7.3f} {stats.p50:>9.4f} "
                f"{stats.p99:>9.4f} {met:>5}"
            )
        lines.append("")
        lines.append(
            f"aggregate: {self.total_completed} requests in "
            f"{self.duration:.3f}s ({self.aggregate_throughput:.1f}/s), "
            f"worst attainment {self.worst_attainment:.3f}"
        )
        return "\n".join(lines)


__all__ = ["TenancyReport", "TenantStats"]
