"""MapUpdate stream processing (Muppet analog).

Two layers:

* :class:`MuppetLocal` executes real MapUpdate applications in-process
  — ``map`` fans each event out into keyed records, ``update`` folds
  records into per-key *slates* (Muppet's persistent per-key state).
  An optional ``pre_map`` hook mirrors the paper's prefetching
  extension (Appendix D.2): it runs ahead of ``map`` on a window of
  events and issues batched lookups through a user-supplied fetcher.

* :class:`MuppetJoinSimulation` is the throughput benchmark used by
  Figures 6 and 11: a stream of join keys saturation-fed through the
  simulated cluster under one of the NO/FC/FD/FR/FO strategies, with
  throughput = tuples processed per simulated second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Sequence

from repro.engine.job import JoinJob, RateRunResult, StreamResult
from repro.engine.prefetch import PreMapRunner
from repro.engine.strategies import Strategy, StrategyConfig
from repro.placement.batch import SizeProfile
from repro.faults.policy import FaultTolerance
from repro.faults.schedule import FaultSchedule
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import NO_TRACER, Tracer
from repro.sim.cluster import Cluster, NodeSpec
from repro.store.messages import UDF
from repro.store.table import Table


class MuppetLocal:
    """Real in-process MapUpdate execution.

    Parameters
    ----------
    map_fn:
        ``event -> iterable of (key, record)``.
    update_fn:
        ``(key, record, slate) -> new_slate`` — slate is ``None`` on
        the key's first record.
    pre_map:
        Optional ``event -> iterable of lookup keys`` prefetch hook;
        requires ``bulk_fetch``.
    bulk_fetch:
        ``(keys) -> {key: value}`` batched lookup used by ``pre_map``;
        fetched values are passed to ``map_fn`` as a second argument.
    window:
        Prefetch look-ahead in events.

    Examples
    --------
    >>> app = MuppetLocal(
    ...     map_fn=lambda e: [(e % 2, e)],
    ...     update_fn=lambda k, v, slate: (slate or 0) + v,
    ... )
    >>> app.run([1, 2, 3, 4])
    {1: 4, 0: 6}
    """

    def __init__(
        self,
        map_fn: Callable[..., Iterable[tuple[Hashable, Any]]],
        update_fn: Callable[[Hashable, Any, Any], Any],
        pre_map: Callable[[Any], Iterable[Hashable]] | None = None,
        bulk_fetch: Callable[[list[Hashable]], dict[Hashable, Any]] | None = None,
        window: int = 64,
    ) -> None:
        if pre_map is not None and bulk_fetch is None:
            raise ValueError("pre_map requires a bulk_fetch implementation")
        self.map_fn = map_fn
        self.update_fn = update_fn
        self.pre_map = pre_map
        self.bulk_fetch = bulk_fetch
        self.window = window
        self.slates: dict[Hashable, Any] = {}
        self._events = 0

    @property
    def events_processed(self) -> int:
        """Events consumed so far."""
        return self._events

    def run(self, events: Iterable[Any]) -> dict[Hashable, Any]:
        """Process a stream of events; returns the final slates."""
        if self.pre_map is None:
            for event in events:
                self._apply(self.map_fn(event))
        else:
            assert self.bulk_fetch is not None
            runner = PreMapRunner(
                pre_map=self.pre_map,
                bulk_fetch=self.bulk_fetch,
                map_fn=lambda event, values: list(self.map_fn(event, values)),
                window=self.window,
            )
            for records in runner.run(events):
                self._apply(records)
        return self.slates

    def _apply(self, records: Iterable[tuple[Hashable, Any]]) -> None:
        self._events += 1
        for key, record in records:
            self.slates[key] = self.update_fn(key, record, self.slates.get(key))


@dataclass
class MuppetJoinSimulation:
    """Streaming join throughput benchmark (Figures 6 and 11).

    The stream engine's nodes are the compute nodes; the data store
    (HBase in the paper) occupies the data nodes.  Throughput is
    measured under saturation feeding — the paper's "number of input
    tuples processed per unit time".
    """

    table: Table
    udf: UDF
    sizes: SizeProfile
    n_compute_nodes: int = 10
    n_data_nodes: int = 10
    node_spec: NodeSpec | None = None
    memory_cache_bytes: float = 100e6
    batch_size: int = 64
    max_wait: float = 0.02
    #: Columnar hot-path knobs passed through to the JoinJob (see
    #: repro.api.BatchOptions).
    vector_width: int = 64
    columnar: bool = True
    block_cache_bytes: float = 0.0
    #: Fault seam passthrough: the stream engine rides the same
    #: runtime kernel (repro.runtime.Transport) as the batch engine,
    #: so schedules and tolerance policies plug in identically.
    fault_schedule: FaultSchedule | None = None
    fault_tolerance: FaultTolerance | None = None
    fault_trace: Any = None
    #: Resilience options passthrough (repro.resilience); opt-in.
    resilience: Any = None
    #: Elastic placement passthrough (repro.placement); opt-in.
    elastic: Any = None
    #: Memory-adaptive execution passthrough (repro.memory); opt-in.
    memory: Any = None
    #: Span tracer and metrics registry passed through to the
    #: underlying JoinJob.
    tracer: Tracer = NO_TRACER
    registry: MetricsRegistry | None = None
    seed: int = 0
    #: The most recent underlying :class:`JoinJob` (real UDF outputs
    #: are reachable via ``last_job.collected_outputs()``).
    last_job: JoinJob | None = None

    def _build_job(self, strategy: StrategyConfig | str) -> JoinJob:
        config = (
            Strategy.by_name(strategy) if isinstance(strategy, str) else strategy
        )
        n_nodes = self.n_compute_nodes + self.n_data_nodes
        spec = self.node_spec if self.node_spec is not None else NodeSpec()
        cluster = Cluster.homogeneous(n_nodes, spec)
        job = JoinJob(
            cluster=cluster,
            compute_nodes=list(range(self.n_compute_nodes)),
            data_nodes=list(range(self.n_compute_nodes, n_nodes)),
            table=self.table,
            udf=self.udf,
            strategy=config,
            sizes=self.sizes,
            batch_size=self.batch_size,
            max_wait=self.max_wait,
            vector_width=self.vector_width,
            columnar=self.columnar,
            memory_cache_bytes=self.memory_cache_bytes,
            block_cache_bytes=self.block_cache_bytes,
            fault_schedule=self.fault_schedule,
            fault_tolerance=self.fault_tolerance,
            fault_trace=self.fault_trace,
            tracer=self.tracer,
            registry=self.registry,
            resilience=self.resilience,
            elastic=self.elastic,
            memory=self.memory,
            seed=self.seed,
        )
        self.last_job = job
        return job

    def run(
        self, strategy: StrategyConfig | str, stream: Sequence[Hashable]
    ) -> StreamResult:
        """Run the stream under ``strategy``; returns throughput."""
        return self._build_job(strategy).run_streaming(list(stream))

    def run_at_rate(
        self,
        strategy: StrategyConfig | str,
        stream: Sequence[Hashable],
        arrivals_per_second: float,
    ) -> RateRunResult:
        """Feed the stream at a fixed arrival rate and measure latency.

        The latency side of Section 7.2's max-wait trade-off: tuples
        arrive on a schedule instead of under saturation, and each
        tuple's arrival-to-completion latency is recorded.
        """
        return self._build_job(strategy).run_at_rate(
            list(stream), arrivals_per_second
        )
