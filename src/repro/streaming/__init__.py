"""Muppet-style stream processing analog (Sections 7.1, 9.1.2, 9.3).

Muppet processes "fast data" with MapUpdate: ``map`` turns each event
into keyed records, ``update`` folds each record into a per-key slate.
This package provides:

* :class:`MuppetLocal` — a real, in-process MapUpdate executor
  (correctness path, used in tests and examples),
* :class:`MuppetJoinSimulation` — the streaming join benchmark: feeds
  a stream through the simulated cluster under a strategy and reports
  throughput (tuples/second), the Figure 6 / Figure 11 metric.
"""

from repro.streaming.muppet import MuppetLocal, MuppetJoinSimulation

__all__ = ["MuppetLocal", "MuppetJoinSimulation"]
