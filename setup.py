"""Legacy setuptools shim.

Kept so ``pip install -e .`` works in offline environments whose
setuptools cannot build PEP 660 editable wheels (no ``wheel`` package).
All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
