"""The core primitives, standalone — no simulator required.

Demonstrates the paper's building blocks on their own:

* extended ski-rental: thresholds, the 2 - br/r guarantee, and an
  empirical check across adversarial access counts,
* Lossy Counting: tracking heavy hitters in bounded space,
* the two-tier LFU-DA cache: admissions, evictions, aging,
* the per-key optimizer making live rent/buy decisions as costs and
  access counts evolve.

Run:  python examples/ski_rental_playground.py
"""

from repro import (
    CostModel,
    CostParameters,
    JoinLocationOptimizer,
    Route,
    SkiRental,
)
from repro.cache import TieredCache
from repro.core import LossyCounter, buy_threshold, competitive_ratio


def demo_ski_rental() -> None:
    print("=== Extended ski-rental (Section 4) ===")
    rent, buy, recurring = 1.0, 10.0, 0.4
    threshold = buy_threshold(rent, buy, recurring)
    bound = competitive_ratio(rent, buy, recurring)
    print(f"rent={rent}, buy={buy}, recurring-after-buy={recurring}")
    print(f"  -> buy at access {threshold:.1f}; worst-case ratio {bound:.2f}")
    worst = 0.0
    for accesses in range(0, 200):
        outcome = SkiRental.simulate(accesses, rent, buy, recurring)
        worst = max(worst, outcome.ratio)
    print(f"  empirical worst ratio over 200 adversarial lengths: {worst:.3f}")
    assert worst <= bound + 1e-9


def demo_lossy_counting() -> None:
    print("\n=== Lossy Counting (Section 4.3) ===")
    counter = LossyCounter(epsilon=0.01)
    for i in range(20000):
        counter.add("hot-a" if i % 3 == 0 else ("hot-b" if i % 7 == 0 else f"cold-{i}"))
    print(f"  stream of {counter.total} keys, summary holds {counter.tracked} entries")
    print(f"  frequent (support 5%): {sorted(map(str, counter.frequent_keys(0.05)))}")


def demo_cache() -> None:
    print("\n=== Two-tier LFU-DA cache (Appendix B) ===")
    cache = TieredCache(memory_bytes=100.0)
    for _ in range(5):
        cache.update_benefit("hot")
    cache.cond_cache_in_memory("hot", "HOT-MODEL", 60.0)
    cache.update_benefit("warm")
    cache.cond_cache_in_memory("warm", "WARM-MODEL", 40.0)
    # A high-benefit newcomer displaces the weakest resident to disk.
    for _ in range(10):
        cache.update_benefit("rising")
    admitted = cache.cond_cache_in_memory("rising", "RISING-MODEL", 50.0)
    print(f"  'rising' admitted to memory: {admitted}")
    print(f"  memory: {sorted(map(str, cache.memory_keys))}")
    print(f"  disk:   {sorted(map(str, cache.disk_keys))}")


def demo_optimizer() -> None:
    print("\n=== Per-key routing (Algorithm 1) ===")
    cost_model = CostModel(node_id=0, bandwidth={1: 125e6}, local_disk_time=0.001)
    optimizer = JoinLocationOptimizer(cost_model, TieredCache(memory_bytes=1e6))
    routes = []
    for access in range(6):
        decision = optimizer.route("token", data_node=1)
        routes.append(decision.route.value)
        if decision.route is Route.COMPUTE_REQUEST:
            # The data node replies with measured costs.
            optimizer.observe_response(CostParameters(
                key="token", value_size=200_000.0, compute_time=0.02,
                disk_time=0.002, cpu_service_time=0.004, node_id=1,
            ))
        elif decision.route.is_data_request:
            optimizer.complete_fetch("token", "MODEL-BYTES", decision.route)
    print("  access-by-access routing:", routes)
    assert routes[0] == "compute-request"  # first contact always rents
    assert routes[-1] == "local-memory"  # ends up cached


if __name__ == "__main__":
    demo_ski_rental()
    demo_lossy_counting()
    demo_cache()
    demo_optimizer()
