"""Elastic scale-out during a running join (Section 1, contribution 3).

Compute nodes hold no join state, so capacity can follow load: this
example starts a compute-heavy job on a single compute node, then adds
two more mid-run and retires one near the end, printing the throughput
the job achieved in each phase.  The membership schedule rides on
:class:`repro.RunConfig` — any node named by an "add" event sits out
until its event fires; everything else runs from time zero.

Run:  PYTHONPATH=src python examples/elastic_scaling.py
"""

from repro import BatchOptions, JobSpec, MembershipEvent, RunConfig, run_join

EVENTS = (
    MembershipEvent(time=2.0, action="add", node_id=1),
    MembershipEvent(time=2.0, action="add", node_id=2),
    MembershipEvent(time=6.0, action="remove", node_id=2),
)


def main() -> None:
    spec = JobSpec.synthetic(
        "compute_heavy", n_keys=500, n_tuples=6000, skew=0.8, seed=11
    )
    report = run_join(spec, RunConfig(
        engine="engine",
        n_compute=3,
        n_data=2,
        batching=BatchOptions(batch_size=64, max_wait=0.01),
        membership=EVENTS,
        seed=11,
    ))
    result = report.result.native

    print(f"{result.n_tuples} tuples in {result.makespan:.2f}s")
    print("membership:", ", ".join(
        f"t={e.time:g}s {e.action} node {e.node_id}" for e in EVENTS
    ))
    print("\nper-node completions:")
    for node_id, count in sorted(result.completed_per_node.items()):
        print(f"  node {node_id}: {count}")
    print("\nthroughput by phase:")
    phases = [(0.5, 2.0, "1 node"), (2.5, 5.5, "3 nodes"), (6.5, 8.0, "2 nodes")]
    for start, end, label in phases:
        if end <= result.makespan:
            print(f"  {label:>8s} [{start:>4.1f}s..{end:>4.1f}s): "
                  f"{result.throughput_in(start, end):7.1f} tuples/s")


if __name__ == "__main__":
    main()
