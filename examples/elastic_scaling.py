"""Elastic scale-out during a running join (Section 1, contribution 3).

Compute nodes hold no join state, so capacity can follow load: this
example starts a compute-heavy job on a single compute node, then adds
two more mid-run and retires one near the end, printing the throughput
the job achieved in each phase.

Run:  python examples/elastic_scaling.py
"""

from repro import Strategy
from repro.sim import Cluster
from repro.engine.elastic import ElasticJoinJob, MembershipEvent
from repro.workloads.synthetic import SyntheticWorkload


def main() -> None:
    workload = SyntheticWorkload.compute_heavy(
        n_keys=500, n_tuples=6000, skew=0.8, seed=11
    )
    cluster = Cluster.homogeneous(6)
    events = [
        MembershipEvent(time=2.0, action="add", node_id=1),
        MembershipEvent(time=2.0, action="add", node_id=2),
        MembershipEvent(time=6.0, action="remove", node_id=2),
    ]
    job = ElasticJoinJob(
        cluster=cluster,
        initial_compute_nodes=[0],
        data_nodes=[4, 5],
        table=workload.build_table(),
        udf=workload.udf,
        strategy=Strategy.fo(),
        sizes=workload.sizes,
        events=events,
        seed=11,
    )
    result = job.run(workload.keys())

    print(f"{result.n_tuples} tuples in {result.makespan:.2f}s")
    print("membership:", ", ".join(
        f"t={e.time:g}s {e.action} node {e.node_id}" for e in events
    ))
    print("\nper-node completions:")
    for node_id, count in sorted(result.completed_per_node.items()):
        print(f"  node {node_id}: {count}")
    print("\nthroughput by phase:")
    phases = [(0.5, 2.0, "1 node"), (2.5, 5.5, "3 nodes"), (6.5, 8.0, "2 nodes")]
    for start, end, label in phases:
        if end <= result.makespan:
            print(f"  {label:>8s} [{start:>4.1f}s..{end:>4.1f}s): "
                  f"{result.throughput_in(start, end):7.1f} tuples/s")


if __name__ == "__main__":
    main()
