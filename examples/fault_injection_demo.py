"""Fault injection, end to end: crash + message chaos + straggler.

The acceptance scenario from the fault subsystem's design: one data
node crashes mid-run, the network drops / duplicates / delays messages
throughout, and the other data node straggles at 5x service time.  The
engine rides it out with timeouts, idempotent retries and replica
fallback — and with :class:`ResilienceOptions` enabled, a heartbeat
failure detector confirms the death and fails the node's regions over
to its ring successor.  Every run's join output is compared bit-for-bit
against the thread-pool backend (the differential oracle).

Everything goes through :func:`repro.api.run_join` — one call, any
engine, no engine internals.

Run:  PYTHONPATH=src python examples/fault_injection_demo.py
"""

from repro import JobSpec, ResilienceOptions, RunConfig, run_join
from repro.faults import (
    CrashFault,
    FaultSchedule,
    FaultTolerance,
    MessageChaos,
    StragglerFault,
)

SPEC = JobSpec.synthetic(
    "data_heavy", n_keys=300, n_tuples=2500, skew=1.0, seed=23
)

SCHEDULE = FaultSchedule(
    seed=5,
    crashes=(CrashFault(node_id=2, at=0.4, duration=0.8),),
    chaos=(
        MessageChaos(
            at=0.0, duration=3.0,
            drop=0.15, duplicate=0.1, delay=0.1, max_delay=0.03,
        ),
    ),
    stragglers=(StragglerFault(node_id=3, at=1.0, duration=1.0, slowdown=5.0),),
)


def main() -> None:
    oracle = run_join(SPEC, RunConfig(backend="local")).outputs

    print("=== clean run ===")
    clean = run_join(SPEC, RunConfig(engine="engine", seed=11))
    assert clean.outputs == oracle
    print(f"{clean.n_tuples} tuples in {clean.makespan:.2f}s "
          "(oracle: exact match)")

    print("\n=== crash + chaos + straggler ===")
    faulty = run_join(SPEC, RunConfig(
        engine="engine",
        seed=11,
        faults=SCHEDULE,
        fault_tolerance=FaultTolerance(request_timeout=0.25, max_retries=2),
    ))
    counters = faulty.snapshot.get("counters", {})
    print(f"{faulty.n_tuples} tuples in {faulty.makespan:.2f}s "
          f"({faulty.makespan / clean.makespan:.2f}x the clean makespan)")
    for label, name in (
        ("messages faulted", "faults.messages_faulted"),
        ("timeouts", "transport.timeouts"),
        ("retries", "transport.retries"),
        ("replica fallbacks", "transport.fallbacks"),
        ("duplicate responses", "transport.duplicate_responses"),
    ):
        print(f"  {label + ':':<22s}{counters.get(name, 0):g}")
    assert faulty.outputs == oracle

    print("\n=== same faults, resilience on ===")
    resilient = run_join(SPEC, RunConfig(
        engine="engine",
        seed=11,
        faults=SCHEDULE,
        fault_tolerance=FaultTolerance(request_timeout=0.25, max_retries=2),
        resilience=ResilienceOptions.on(hedging=True, hedge_quantile=0.5),
    ))
    counters = resilient.snapshot.get("counters", {})
    print(f"{resilient.n_tuples} tuples in {resilient.makespan:.2f}s "
          f"({resilient.makespan / clean.makespan:.2f}x the clean makespan)")
    for label, name in (
        ("heartbeats received", "resilience.heartbeats.received"),
        ("deaths detected", "resilience.detector.deaths"),
        ("failovers", "resilience.failover.count"),
        ("regions moved", "resilience.failover.regions_moved"),
        ("hedges issued", "resilience.hedges.issued"),
        ("hedges won", "resilience.hedges.won"),
    ):
        print(f"  {label + ':':<22s}{counters.get(name, 0):g}")
    assert resilient.outputs == oracle

    print(f"\noracle: all {len(oracle)} outputs identical to the "
          "thread-pool join, in every run")


if __name__ == "__main__":
    main()
