"""Fault injection, end to end: crash + message chaos + straggler.

The acceptance scenario from the fault subsystem's design: one data
node crashes mid-run, the network drops / duplicates / delays messages
throughout, and the other data node straggles at 5x service time.  The
engine rides it out with timeouts, idempotent retries and replica
fallback — and the final join output is compared bit-for-bit against a
naive single-node hash join (the differential oracle).

Run:  PYTHONPATH=src python examples/fault_injection_demo.py
"""

from repro.engine.job import JoinJob
from repro.engine.requests import UDF
from repro.engine.strategies import Strategy
from repro.faults import (
    CrashFault,
    FaultSchedule,
    FaultTolerance,
    MessageChaos,
    StragglerFault,
)
from repro.metrics.trace import FaultTrace
from repro.sim.cluster import Cluster
from repro.workloads.synthetic import SyntheticWorkload


def single_node_oracle(keys, udf, values):
    """The reference answer: hash the relation, probe, apply the UDF."""
    return {tid: udf.apply(key, None, values[key]) for tid, key in enumerate(keys)}


def run(schedule=None, tolerance=None, trace=None):
    workload = SyntheticWorkload.data_heavy(
        n_keys=300, n_tuples=2500, skew=1.0, seed=23
    )
    udf = UDF(
        result_size=64.0, param_size=64.0, key_size=8.0,
        apply_fn=lambda k, p, v: f"{k}|{p}|{v}",
    )
    job = JoinJob(
        cluster=Cluster.homogeneous(4),
        compute_nodes=[0, 1],
        data_nodes=[2, 3],
        table=workload.build_table(),
        udf=udf,
        strategy=Strategy.fo(),
        sizes=workload.sizes,
        memory_cache_bytes=20e6,
        fault_schedule=schedule,
        fault_tolerance=tolerance,
        fault_trace=trace,
        seed=11,
    )
    keys = workload.keys()
    values = {row.key: row.value for row in job.table.rows()}
    result = job.run(keys)
    oracle = single_node_oracle(keys, udf, values)
    return result, job.collected_outputs(), oracle


def main() -> None:
    print("=== clean run ===")
    clean, outputs, oracle = run()
    assert outputs == oracle
    print(f"{clean.n_tuples} tuples in {clean.makespan:.2f}s  (oracle: exact match)")

    print("\n=== crash + chaos + straggler ===")
    schedule = FaultSchedule(
        seed=5,
        crashes=(CrashFault(node_id=2, at=0.4, duration=0.8),),
        chaos=(
            MessageChaos(
                at=0.0, duration=3.0,
                drop=0.15, duplicate=0.1, delay=0.1, max_delay=0.03,
            ),
        ),
        stragglers=(StragglerFault(node_id=3, at=1.0, duration=1.0, slowdown=5.0),),
    )
    trace = FaultTrace()
    faulty, outputs, oracle = run(
        schedule=schedule,
        tolerance=FaultTolerance(request_timeout=0.25, max_retries=2),
        trace=trace,
    )
    print(f"{faulty.n_tuples} tuples in {faulty.makespan:.2f}s "
          f"({faulty.makespan / clean.makespan:.2f}x the clean makespan)")
    print(f"  messages faulted:    {faulty.messages_faulted}")
    print(f"  timeouts:            {faulty.timeouts}")
    print(f"  retries:             {faulty.retries}")
    print(f"  replica fallbacks:   {faulty.fallbacks}")
    print(f"  duplicate responses: {faulty.duplicate_responses}")
    print(f"  replayed requests:   {faulty.duplicate_requests}")
    print("  trace:", dict(trace.counts_by_kind()))

    mismatches = {t for t in oracle if outputs.get(t) != oracle[t]}
    if mismatches:
        raise SystemExit(f"ORACLE MISMATCH on {len(mismatches)} tuples!")
    print(f"\noracle: all {len(oracle)} outputs identical to the "
          f"single-node hash join")


if __name__ == "__main__":
    main()
