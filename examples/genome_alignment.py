"""Genome read alignment (CloudBurst, Appendix A) on the framework.

Short reads join an n-gram index of a reference sequence; an
approximate-matching UDF verifies every candidate location.  A planted
tandem repeat makes a handful of n-grams both extremely frequent and
extremely expensive to verify — the skew that makes the reduce-side
CloudBurst implementation straggle, and that per-key runtime routing
dissolves: hot n-grams get cached and verified across all compute
nodes, cold ones verify at the data nodes.  All three strategies run
through :func:`repro.api.run_join`.

Run:  PYTHONPATH=src python examples/genome_alignment.py
"""

from collections import Counter
from dataclasses import replace

from repro import JobSpec, RunConfig, run_join
from repro.workloads.genome import GenomeWorkload


def main() -> None:
    workload = GenomeWorkload(
        reference_length=60_000, n_reads=3000, repeat_fraction=0.1, seed=13
    )
    stream = workload.seed_stream()
    counts = Counter(stream)
    hottest, hottest_count = counts.most_common(1)[0]
    hot_candidates = len(workload.index[hottest])
    print(
        f"Reference: {len(workload.reference)} bases; index: "
        f"{len(workload.index)} n-grams; reads: {len(workload.reads)}"
    )
    print(
        f"Seed stream: {len(stream)} seeds; hottest n-gram {hottest!r} "
        f"appears {hottest_count} times and has {hot_candidates} candidate "
        f"locations to verify per occurrence"
    )

    udf = replace(
        workload.udf,
        apply_fn=lambda k, p, v: f"verified:{k}",
    )
    results = {}
    for name in ("FD", "FC", "FO"):
        spec = JobSpec(
            table=workload.build_table(),
            udf=udf,
            keys=tuple(stream),
            sizes=workload.sizes,
            strategy=name,
        )
        report = run_join(spec, RunConfig(
            engine="engine", n_compute=4, n_data=4, seed=13,
            memory_cache_bytes=50e6,
        ))
        outcome = report.result.native
        usage = report.metrics.usage
        results[name] = outcome
        print(
            f"\n{name}: {outcome.makespan:6.2f}s  "
            f"(CPU skew across nodes {usage.cpu_skew:.2f}, "
            f"{outcome.cache_memory_hits} cache hits, "
            f"{outcome.udfs_at_data_nodes} verifications at data nodes)"
        )

    print(
        f"\nFO vs reduce-side FD: {results['FD'].makespan / results['FO'].makespan:.2f}x "
        f"faster — the repeat's verification load spread over every node."
    )


if __name__ == "__main__":
    main()
