"""Quickstart: run one join job under every strategy and compare.

A skewed stream of keys joins a stored relation on a small simulated
cluster (4 compute + 4 data nodes).  Each strategy from the paper runs
on identical hardware through the one-call facade
(:func:`repro.api.run_join`); the table shows completion time, where
the UDFs executed, and how the cache behaved, and the final FO run is
rendered as a full observability report.

Run:  python examples/quickstart.py
"""

from repro import JobSpec, ObsOptions, RunConfig, run_join
from repro.metrics.report import ExperimentTable


def main() -> None:
    table = ExperimentTable(
        "strategy comparison",
        ["strategy", "seconds", "throughput/s", "udfs@data", "cache hits"],
    )
    config = RunConfig(engine="engine", n_compute=4, n_data=4, seed=42)
    report = None
    for name in ("NO", "FC", "FD", "FR", "CO", "LO", "FO"):
        spec = JobSpec.synthetic(
            "data_compute_heavy",
            n_keys=3000,
            n_tuples=3000,
            skew=1.5,
            seed=42,
            strategy=name,
        )
        # Trace the final (FO) run so the report below has a span tree.
        if name == "FO":
            config = RunConfig(
                engine="engine", n_compute=4, n_data=4, seed=42,
                obs=ObsOptions(tracing=True),
            )
        report = run_join(spec, config)
        counters = report.snapshot["counters"]
        table.add_row([
            name,
            report.makespan,
            report.throughput,
            counters.get("jobs.udfs_at_data_nodes", 0),
            counters.get("cache.memory_hits", 0)
            + counters.get("cache.disk_hits", 0),
        ])
    print(table.render())
    print()
    fo = table.cell("FO", "seconds")
    fd = table.cell("FD", "seconds")
    print(f"FO (all optimizations) vs FD (pure reduce-side): {fd / fo:.2f}x faster")
    print()
    assert report is not None
    print(report.render())


if __name__ == "__main__":
    main()
