"""Quickstart: run one join job under every strategy and compare.

A skewed stream of keys joins a stored relation on a small simulated
cluster (4 compute + 4 data nodes).  Each strategy from the paper runs
on identical hardware; the table shows completion time, where the UDFs
executed, and how the cache behaved.

Run:  python examples/quickstart.py
"""

from repro import Cluster, JoinJob, Strategy
from repro.metrics.report import ExperimentTable
from repro.workloads.synthetic import SyntheticWorkload


def main() -> None:
    workload = SyntheticWorkload.data_compute_heavy(
        n_keys=3000, n_tuples=3000, skew=1.5, seed=42
    )
    print(
        f"Workload: {workload.n_tuples} tuples over {workload.n_keys} keys, "
        f"Zipf z={workload.skew}; stored values "
        f"{workload.value_size / 1000:.0f} KB, UDF "
        f"{workload.compute_cost * 1000:.0f} ms"
    )

    table = ExperimentTable(
        "strategy comparison",
        ["strategy", "seconds", "throughput/s", "udfs@data", "cache hits"],
    )
    for name in ("NO", "FC", "FD", "FR", "CO", "LO", "FO"):
        cluster = Cluster.homogeneous(8)
        job = JoinJob(
            cluster=cluster,
            compute_nodes=[0, 1, 2, 3],
            data_nodes=[4, 5, 6, 7],
            table=workload.build_table(),
            udf=workload.udf,
            strategy=Strategy.by_name(name),
            sizes=workload.sizes,
            memory_cache_bytes=20e6,
            seed=42,
        )
        result = job.run(workload.keys())
        table.add_row([
            name,
            result.makespan,
            result.throughput,
            result.udfs_at_data_nodes,
            result.cache_memory_hits + result.cache_disk_hits,
        ])
    print()
    print(table.render())
    print()
    fo = table.cell("FO", "seconds")
    fd = table.cell("FD", "seconds")
    print(f"FO (all optimizations) vs FD (pure reduce-side): {fd / fo:.2f}x faster")


if __name__ == "__main__":
    main()
