"""Graceful degradation under memory pressure, end to end.

Three runs of the same skewed join through :func:`repro.api.run_join`:

1. **Unbudgeted baseline** — the build side is fully resident;
2. **Budget sweep** — the per-node byte budget shrinks from 100% of
   the build side down to 10%; data nodes degrade to a spilling
   hybrid-hash join and the makespan inflates with spill traffic;
3. **Runtime squeeze** — a scheduled ``memory_pressure`` fault halves
   one node's budget mid-run, exercising reclaimers and forced
   refusals.

Every run's output is compared bit-for-bit against the unbudgeted
run: the budget changes *when* and *where* bytes live, never the
answer.

Run:  PYTHONPATH=src python examples/memory_pressure.py
"""

from repro import JobSpec, MemoryOptions, RunConfig, run_join
from repro.faults import FaultSchedule
from repro.faults.schedule import MemoryPressureFault

SPEC = JobSpec.synthetic(
    "data_heavy", n_keys=300, n_tuples=2500, skew=1.0, seed=23,
    value_size=20_000,
)

#: Bytes the stored relation occupies (300 keys x 20 KB values); the
#: sweep expresses budgets as fractions of it.
BUILD_SIDE = 300 * 20_000


def run(memory: MemoryOptions | None = None, faults=None):
    return run_join(SPEC, RunConfig(
        engine="engine",
        seed=11,
        memory=memory if memory is not None else MemoryOptions.off(),
        faults=faults,
    ))


def main() -> None:
    print("=== unbudgeted baseline ===")
    baseline = run()
    print(f"{baseline.n_tuples} tuples in {baseline.makespan:.3f}s")

    print("\n=== budget sweep (fraction of build side) ===")
    # Inflation is measured against the *fully resident* budgeted run:
    # at 100% the build side never spills, so that run is the spill-free
    # reference the tighter budgets degrade from.
    resident = run(MemoryOptions.on(budget_bytes=float(BUILD_SIDE)))
    assert resident.outputs == baseline.outputs, "budget changed the answer"
    print(f"{'budget':>8} {'makespan':>9} {'inflation':>9} "
          f"{'spills':>7} {'spilled MB':>10}")
    for fraction in (1.0, 0.5, 0.25, 0.1):
        report = run(MemoryOptions.on(budget_bytes=fraction * BUILD_SIDE))
        assert report.outputs == baseline.outputs, "budget changed the answer"
        counters = report.snapshot.get("counters", {})
        print(f"{fraction:>7.0%} {report.makespan:>8.3f}s "
              f"{report.makespan / resident.makespan:>8.2f}x "
              f"{counters.get('memory.spills', 0):>7.0f} "
              f"{counters.get('memory.spill_bytes', 0) / 1e6:>10.1f}")

    print("\n=== runtime squeeze: crush node 2's budget mid-run ===")
    squeezed = run(
        MemoryOptions.on(budget_bytes=0.25 * BUILD_SIDE),
        faults=FaultSchedule(memory_pressure=(
            MemoryPressureFault(node_id=2, at=0.1, factor=0.25),
        )),
    )
    assert squeezed.outputs == baseline.outputs, "pressure changed the answer"
    counters = squeezed.snapshot.get("counters", {})
    print(f"makespan {squeezed.makespan:.3f}s "
          f"({squeezed.makespan / resident.makespan:.2f}x resident)")
    print(f"shrinks applied   {counters.get('memory.budget_shrinks', 0):.0f}")
    print(f"reservations refused {counters.get('memory.budget_refusals', 0):.0f}")
    print(f"partitions spilled {counters.get('memory.spills', 0):.0f}, "
          f"readmitted {counters.get('memory.unspills', 0):.0f}")
    print("\nEvery run matched the unbudgeted output exactly: the budget "
          "decides\nwhere bytes live, never what the join returns.")


if __name__ == "__main__":
    main()
