"""Handling skew with elastic placement (DESIGN.md §13).

Zipf-skewed key streams concentrate traffic on a few regions and, in
the worst case, a few individual keys.  This example runs the same
heavily skewed join twice — once on the static region map, once with
:class:`repro.ElasticOptions` switched on — and prints how the load on
the hottest data node changes, along with what the placement service
did about the hot spot (region splits, merges, migrations, hot-key
replicas).  ``elastic=off`` is bit-identical to the static map, so the
comparison isolates the placement policy.

Run:  PYTHONPATH=src python examples/skew_handling.py
"""

from repro import ElasticOptions, MetricsRegistry
from repro.engine.job import JoinJob
from repro.engine.strategies import Strategy
from repro.sim.cluster import Cluster
from repro.workloads.synthetic import SyntheticWorkload

ELASTIC = ElasticOptions.on(
    check_interval=0.05,
    min_observations=16,
    split_factor=1.5,
    hot_key_fraction=0.05,
)


def run(elastic):
    workload = SyntheticWorkload.data_heavy(
        n_keys=400, n_tuples=4000, skew=1.5, seed=21
    )
    registry = MetricsRegistry()
    job = JoinJob(
        cluster=Cluster.homogeneous(8),
        compute_nodes=[0, 1, 2, 3],
        data_nodes=[4, 5, 6, 7],
        table=workload.build_table(),
        udf=workload.udf,
        strategy=Strategy.fo(),
        sizes=workload.sizes,
        memory_cache_bytes=2e5,  # a small cache keeps the skew visible
        elastic=elastic,
        registry=registry,
        seed=21,
    )
    result = job.run(workload.keys())
    served = {
        node: server.items_served for node, server in job.servers.items()
    }
    placement = {
        name: value
        for section in registry.snapshot().values()
        for name, value in section.items()
        if name.startswith("placement.")
    }
    return result, served, placement


def describe(label, result, served):
    total = sum(served.values()) or 1
    hottest = max(served, key=served.get)
    print(f"{label}:")
    print(f"  makespan {result.makespan:.2f}s")
    for node in sorted(served):
        share = served[node] / total
        marker = "  <- hottest" if node == hottest else ""
        print(f"  data node {node}: {served[node]:5d} items "
              f"({share:5.1%}){marker}")
    return served[hottest] / total


def main() -> None:
    result_off, served_off, _ = run(None)
    share_off = describe("static map (elastic off)", result_off, served_off)

    print()
    result_on, served_on, placement = run(ELASTIC)
    share_on = describe("elastic placement on", result_on, served_on)
    for name in sorted(placement):
        print(f"  {name:32s} {placement[name]:g}")

    print(f"\nhottest-node share: {share_off:.1%} -> {share_on:.1%}")


if __name__ == "__main__":
    main()
