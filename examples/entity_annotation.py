"""Entity annotation: the paper's running example, end to end.

Annotating documents means joining each entity mention ("spot") with a
stored classification model and running the classifier — the join key
stream is heavily skewed (hot tokens), model sizes span four orders of
magnitude, and classification cost varies per model.  This example:

1. builds the synthetic ClueWeb-style corpus and model store,
2. runs the classic reduce-side joins (naive Hadoop hash partitioning,
   then the CSAW skew-aware partitioner) on the MapReduce analog,
3. runs the paper's framework (FO) on a split compute/data cluster
   through :func:`repro.api.run_join`,
4. prints the comparison plus where the framework cached and executed.

Run:  PYTHONPATH=src python examples/entity_annotation.py
"""

from dataclasses import replace

from repro import JobSpec, RunConfig, run_join
from repro.mapreduce import CSAWPartitioner, KeyStatistics, ReduceSideJoinJob
from repro.sim import Cluster
from repro.workloads.annotation import AnnotationWorkload


def main() -> None:
    workload = AnnotationWorkload(n_tokens=1200, n_docs=300, seed=5)
    spots = workload.spot_stream()
    print(
        f"Corpus: {len(workload.documents)} documents, {workload.n_spots} spots; "
        f"model store: {workload.n_tokens} models, "
        f"{workload.total_model_bytes / 1e6:.0f} MB total"
    )

    # ------------------------------------------------------------------
    # Reduce-side baselines (all 8 nodes).
    # ------------------------------------------------------------------
    naive = ReduceSideJoinJob(
        Cluster.homogeneous(8),
        workload.model_sizes,
        workload.model_costs,
        model_hydration=workload.model_hydration,
    ).run(workload.documents)
    print(f"\nNaive Hadoop reduce-side:   {naive.makespan:7.2f}s "
          f"(straggler ratio {naive.straggler_ratio:.1f})")

    stats = KeyStatistics.from_stream(spots, costs=workload.model_costs)
    csaw = ReduceSideJoinJob(
        Cluster.homogeneous(8),
        workload.model_sizes,
        workload.model_costs,
        partitioner=CSAWPartitioner(stats, 8, seed=5),
        model_hydration=workload.model_hydration,
    ).run(workload.documents)
    print(f"CSAW (needs statistics):    {csaw.makespan:7.2f}s "
          f"(straggler ratio {csaw.straggler_ratio:.1f}, "
          f"{len(stats.frequencies)} keys profiled up front)")

    # ------------------------------------------------------------------
    # The paper's framework: per-key runtime decisions, no statistics.
    # ------------------------------------------------------------------
    spec = JobSpec(
        table=workload.build_table(),
        udf=replace(
            workload.udf,
            apply_fn=lambda k, p, v: f"classified:{k}",
        ),
        keys=tuple(spots),
        sizes=workload.sizes,
        strategy="FO",
    )
    report = run_join(spec, RunConfig(
        engine="engine", n_compute=4, n_data=4, seed=5,
        memory_cache_bytes=100e6,
    ))
    result = report.result.native
    print(f"Framework (FO, no stats):   {result.makespan:7.2f}s")
    print(
        f"\n  cache: {result.cache_memory_hits} memory hits, "
        f"{result.cache_disk_hits} disk hits over {result.n_tuples} spots"
    )
    print(
        f"  UDF placement: {result.udfs_at_compute_nodes} at compute nodes, "
        f"{result.udfs_at_data_nodes} at data nodes "
        f"(load balancer kept {result.lb_kept_fraction:.0%} of batched work remote)"
    )
    print(
        f"\nFO vs naive Hadoop: {naive.makespan / result.makespan:.1f}x faster; "
        f"vs CSAW: {csaw.makespan / result.makespan:.1f}x faster"
    )


if __name__ == "__main__":
    main()
