"""Multi-join TPC-DS queries: SparkSQL shuffle joins vs our framework.

Runs Q3 / Q7 / Q27 / Q42 on TPC-DS-lite three ways:

1. the real in-memory executor (the ground-truth answers),
2. the simulated SparkSQL path (shuffle hash join per dimension),
3. the simulated framework path (pipelined indexed joins with
   ski-rental caching — no shuffle),

and verifies that the shuffle path's results equal the reference while
comparing the two timing paths, as in Figure 7.

Run:  python examples/tpcds_multijoin.py
"""

from repro.metrics.report import ExperimentTable
from repro.sim.cluster import Cluster
from repro.sparklite.indexed_exec import IndexedExecutor
from repro.sparklite.planner import estimated_cardinalities, order_joins
from repro.sparklite.shuffle_exec import ShuffleExecutor
from repro.workloads.tpcds import TPCDSLite


def main() -> None:
    data = TPCDSLite(fact_rows=12000, seed=33)
    print(
        f"TPC-DS-lite: store_sales={len(data.store_sales)} rows, "
        f"item={len(data.item)}, date_dim={len(data.date_dim)}, "
        f"customer_demographics={len(data.customer_demographics)}"
    )

    table = ExperimentTable(
        "Figure 7 shape",
        ["query", "joins", "result rows", "spark (s)", "ours (s)", "speedup"],
    )
    for name, query in data.queries().items():
        order = order_joins(query)
        cards = estimated_cardinalities(query, order)
        reference = query.execute(join_order=order)

        spark = ShuffleExecutor(Cluster.homogeneous(8)).run(query, join_order=order)
        assert sorted(spark.result.rows) == sorted(reference.rows), (
            "shuffle executor must produce the reference answer"
        )
        ours = IndexedExecutor(
            Cluster.homogeneous(8), [0, 1, 2, 3], [4, 5, 6, 7],
            pipeline_window=256, seed=33,
        ).run(query, join_order=order)

        print(
            f"\n{name}: join order "
            f"{[query.joins[i].dimension.name for i in order]}, "
            f"estimated rows entering each join: "
            f"{[int(c) for c in cards]}"
        )
        table.add_row([
            name,
            len(query.joins),
            len(reference),
            spark.makespan,
            ours.makespan,
            spark.makespan / ours.makespan,
        ])

    print()
    print(table.render())


if __name__ == "__main__":
    main()
