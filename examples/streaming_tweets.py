"""Streaming entity annotation on the Muppet analog.

Two parts:

1. **Real execution** — a MapUpdate application counts entity mentions
   over a bursty tweet stream, using the ``preMap`` prefetch extension
   to batch model lookups (Appendix D.2's API, running on real data).
2. **Throughput simulation** — the same stream drives the simulated
   cluster under NO / FC / FD / FR / FO, reproducing the Figure 6
   comparison: trending entities shift over time, so precomputed
   statistics would go stale, but ski-rental re-learns them online.

Run:  python examples/streaming_tweets.py
"""

from collections import Counter

from repro.metrics.report import ExperimentTable
from repro.streaming.muppet import MuppetJoinSimulation, MuppetLocal
from repro.workloads.tweets import tweet_annotation_workload


def main() -> None:
    models, stream = tweet_annotation_workload(
        n_entities=1500, n_mentions=8000, seed=21
    )
    print(
        f"Stream: {len(stream.mentions)} entity mentions over "
        f"{stream.n_entities} entities; trending entity changes every "
        f"{stream.burst_every} mentions"
    )
    print(f"Trending sequence: {stream.trending_entities()}")

    # ------------------------------------------------------------------
    # Real MapUpdate execution with preMap prefetching.
    # ------------------------------------------------------------------
    model_store = {t: f"model-{t}" for t in range(models.n_tokens)}
    fetches = Counter()

    def bulk_fetch(keys):
        fetches["calls"] += 1
        fetches["keys"] += len(keys)
        return {k: model_store[k] for k in keys}

    app = MuppetLocal(
        map_fn=lambda entity, values: [(entity, values[entity])],
        update_fn=lambda entity, _model, slate: (slate or 0) + 1,
        pre_map=lambda entity: [entity],
        bulk_fetch=bulk_fetch,
        window=128,
    )
    slates = app.run(stream.mentions)
    top = Counter(slates).most_common(3)
    print(
        f"\nMapUpdate processed {app.events_processed} events with "
        f"{fetches['calls']} batched lookups ({fetches['keys']} keys); "
        f"top entities: {top}"
    )

    # ------------------------------------------------------------------
    # Throughput under each streaming strategy (Figure 6 shape).
    # ------------------------------------------------------------------
    table = ExperimentTable(
        "tweets/second by strategy", ["strategy", "throughput", "vs NO"]
    )
    throughputs = {}
    for strategy in ("NO", "FC", "FD", "FR", "FO"):
        simulation = MuppetJoinSimulation(
            table=models.build_table(),
            udf=models.udf,
            sizes=models.sizes,
            n_compute_nodes=3,
            n_data_nodes=3,
            seed=21,
        )
        result = simulation.run(strategy, stream.mentions)
        throughputs[strategy] = result.throughput
    for strategy, throughput in throughputs.items():
        table.add_row([strategy, throughput, throughput / throughputs["NO"]])
    print()
    print(table.render())


if __name__ == "__main__":
    main()
