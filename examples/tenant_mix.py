"""Two tenants, one cluster: fair queueing under a flash crowd.

A steady, well-behaved tenant shares two data nodes with a tenant that
suddenly drives 15x its base rate through the middle of the run.  The
same trace is served twice through the open-loop tenancy runner:

* with the **global** admission controller (``fair=False`` — the PR 4
  baseline), the flash crowd's queueing delay lands on everyone and
  the steady tenant's SLO attainment collapses with the aggressor's;
* with **weighted-fair** admission (``fair=True``), the steady tenant
  keeps its guaranteed slots and its SLO, while the aggressor's excess
  ages out of its own queue and is shed — served degraded on the cheap
  route, charged to the tenant that caused it, never dropped.

Run:  PYTHONPATH=src python examples/tenant_mix.py
"""

from repro.api import RunConfig
from repro.tenancy import (
    SLO,
    ArrivalProcess,
    FlashCrowd,
    SimRunner,
    TenancyOptions,
    TenantMix,
    TenantSpec,
    mix_workload,
)

MIX = TenantMix.even_split(
    (
        TenantSpec(
            "burst",
            ArrivalProcess(
                rate=40.0,
                flash_crowds=(FlashCrowd(start=2.0, duration=3.0,
                                         multiplier=15.0),),
            ),
            skew=0.0, quota=4, slo=SLO(deadline=0.5),
        ),
        TenantSpec(
            "steady", ArrivalProcess(rate=40.0),
            skew=0.0, quota=4, slo=SLO(deadline=0.5),
        ),
    ),
    n_keys=4096,
)


def run(fair, trace):
    config = RunConfig(
        engine="engine", backend="sim", n_compute=2, n_data=2, seed=23,
        tenancy=TenancyOptions.on(fair=fair, queue_bound=8),
    )
    workload = mix_workload(
        MIX, value_size=20_000.0, compute_cost=0.05, seed=23
    )
    return SimRunner(config=config, workload=workload).run(MIX, trace)


def main():
    trace = MIX.trace(horizon=8.0, seed=23)
    offered = trace.offered_load()
    print(f"trace: {len(trace)} requests "
          f"(burst {offered['burst']}, steady {offered['steady']})\n")
    for fair in (False, True):
        label = "weighted-fair" if fair else "global FIFO (baseline)"
        result = run(fair, trace)
        print(f"=== admission: {label} ===")
        print(result.report.render())
        print()
    print("The steady tenant's attainment is the point: identical traffic, "
          "identical cluster —\nonly the admission discipline changed.")


if __name__ == "__main__":
    main()
